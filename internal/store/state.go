package store

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"prague/internal/graph"
	"prague/internal/index"
	"prague/internal/intset"
)

// Epoch-based copy-on-write state shared by both store layouts.
//
// A snap is one immutable published state: the graph slot table, the live-id
// universe, one shardSnap per partition, and the global support bookkeeping
// that drives negative-border masking. Mutations run under base.mu, perform
// incremental index surgery on the affected shard only (index.ApplyInsert /
// index.ApplyDelete — copy-on-write at entry granularity), derive the new
// masks, and publish the whole snap with one atomic pointer store. Readers
// either go through the store's delegating methods (each call sees the
// latest epoch) or Pin a snap once per action for a single-epoch view.
//
// Negative-border repair. Entry ids are baked into SPIG fragment lists and
// shared cache keys, so entries never migrate between A²F and A²I when their
// support crosses the frequency threshold. Instead the snap carries masks
// derived purely from the maintained global supports: an A²F entry whose
// support fell below minSup is masked (no longer frequent), an A²I entry
// whose support reached minSup is masked (no longer infrequent), and an A²I
// entry with a masked frequent parent is masked (its negative border is
// invalid). Masked entries classify as KindNone, which routes queries to the
// NIF intersection-and-verify path — always sound because every id list
// stays exact regardless of classification. Because the masks are a pure
// function of the supports, incremental and from-scratch states agree on
// them whenever they agree on the lists (FuzzIncrementalIndex pins both).
type snap struct {
	epoch  uint64
	kind   string         // layout token: "m" or "s<N>"
	fp     string         // content fingerprint, fixed per store lineage
	tag    string         // CacheTag: kind:fp@epoch
	graphs []*graph.Graph // slot table; nil = tombstone
	live   []int          // ascending non-deleted ids
	shards []*shardSnap
	minSup int   // frozen absolute frequency threshold ⌈α·|D_build|⌉
	supF   []int // global support per a2f entry
	supI   []int // global support per a2i entry
	maskF  []bool
	maskI  []bool
}

type shardSnap struct {
	id  int
	ids []int // live global graph ids, ascending
	set *index.Set
}

func (s *shardSnap) ID() int           { return s.id }
func (s *shardSnap) NumGraphs() int    { return len(s.ids) }
func (s *shardSnap) GraphIDs() []int   { return s.ids }
func (s *shardSnap) Index() *index.Set { return s.set }

func (s *snap) Epoch() uint64             { return s.epoch }
func (s *snap) NumGraphs() int            { return len(s.graphs) }
func (s *snap) Graph(id int) *graph.Graph { return s.graphs[id] }
func (s *snap) LiveIDs() []int            { return s.live }
func (s *snap) NumShards() int            { return len(s.shards) }
func (s *snap) Shard(i int) Shard         { return s.shards[i] }
func (s *snap) ShardOf(graphID int) int   { return shardOf(graphID, len(s.shards)) }
func (s *snap) CacheTag() string          { return s.tag }

// Lookup classifies a canonical code against the vocabulary (every shard
// carries all of it; shard 0 answers), demoting masked entries to KindNone.
func (s *snap) Lookup(code string) (index.Kind, int) {
	kind, id := s.shards[0].set.Lookup(code)
	switch kind {
	case index.KindFrequent:
		if s.maskF[id] {
			return index.KindNone, -1
		}
	case index.KindDIF:
		if s.maskI[id] {
			return index.KindNone, -1
		}
	}
	return kind, id
}

// base is the store chassis both layouts embed: the atomically published
// current snap plus the mutation lock.
type base struct {
	mu  sync.Mutex
	cur atomic.Pointer[snap]
}

// Delegating reads: each sees the latest published epoch. Multi-call
// evaluations needing one consistent view must Pin instead.
func (b *base) Epoch() uint64                        { return b.cur.Load().Epoch() }
func (b *base) NumGraphs() int                       { return b.cur.Load().NumGraphs() }
func (b *base) Graph(id int) *graph.Graph            { return b.cur.Load().Graph(id) }
func (b *base) LiveIDs() []int                       { return b.cur.Load().LiveIDs() }
func (b *base) Lookup(code string) (index.Kind, int) { return b.cur.Load().Lookup(code) }
func (b *base) NumShards() int                       { return b.cur.Load().NumShards() }
func (b *base) Shard(i int) Shard                    { return b.cur.Load().Shard(i) }
func (b *base) ShardOf(graphID int) int              { return b.cur.Load().ShardOf(graphID) }
func (b *base) CacheTag() string                     { return b.cur.Load().CacheTag() }

// Pin returns the current snapshot for a single-epoch evaluation.
func (b *base) Pin() Snapshot { return b.cur.Load() }

// newSnap assembles and seals the initial published state of a store. The
// graphs slice is owned by the store; deleted slots must already be nil. A
// non-empty fp restores a persisted lineage fingerprint (so a reloaded store
// keeps sharing cache entries with its pre-save self); "" computes a fresh
// one from content.
func newSnap(kind string, graphs []*graph.Graph, shards []*shardSnap, minSup int, epoch uint64, fp string) *snap {
	s := &snap{
		epoch:  epoch,
		kind:   kind,
		graphs: graphs,
		shards: shards,
		minSup: minSup,
	}
	for id, g := range graphs {
		if g != nil {
			s.live = append(s.live, id)
		}
	}
	// Seal every shard set (load DF clusters, materialize list memos): the
	// incremental surgery and concurrent snapshot sharing both require fully
	// memory-resident lists that are never lazily written again.
	for _, sh := range shards {
		sh.set.Seal()
	}
	vocab := shards[0].set
	s.supF = make([]int, vocab.A2F.NumEntries())
	s.supI = make([]int, vocab.A2I.NumEntries())
	for _, sh := range shards {
		for i := range s.supF {
			s.supF[i] += len(sh.set.A2F.FSGIds(i))
		}
		for i := range s.supI {
			s.supI[i] += len(sh.set.A2I.FSGIds(i))
		}
	}
	s.recomputeMasks()
	if fp == "" {
		fp = fingerprint(kind, graphs, shards)
	}
	s.fp = fp
	s.tag = makeTag(kind, fp, epoch)
	return s
}

// clone prepares a mutable successor: fresh support/mask/shard-table slices,
// everything else inherited until the mutation overwrites it.
func (s *snap) clone() *snap {
	ns := &snap{
		epoch:  s.epoch + 1,
		kind:   s.kind,
		fp:     s.fp,
		graphs: s.graphs,
		live:   s.live,
		minSup: s.minSup,
		shards: append([]*shardSnap(nil), s.shards...),
		supF:   append([]int(nil), s.supF...),
		supI:   append([]int(nil), s.supI...),
	}
	ns.tag = makeTag(ns.kind, ns.fp, ns.epoch)
	return ns
}

// recomputeMasks rederives the negative-border masks from the supports.
func (s *snap) recomputeMasks() {
	vocab := s.shards[0].set
	s.maskF = make([]bool, len(s.supF))
	for i, sup := range s.supF {
		s.maskF[i] = sup < s.minSup
	}
	s.maskI = make([]bool, len(s.supI))
	for i, sup := range s.supI {
		if sup >= s.minSup {
			s.maskI[i] = true // promoted: no longer infrequent
			continue
		}
		for _, p := range vocab.DIFParents(i) {
			if s.maskF[p] {
				s.maskI[i] = true // border invalid: a frequent parent fell
				break
			}
		}
	}
}

// InsertGraph implements Store: assign the next id, classify the graph
// against the frozen vocabulary, surgically extend the owning shard's index
// lists, and publish the new epoch.
func (b *base) InsertGraph(g *graph.Graph) (int, error) {
	if g == nil || g.NumNodes() == 0 || !g.Connected() {
		return -1, fmt.Errorf("store: insert: %w", ErrBadGraph)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	cur := b.cur.Load()
	id := len(cur.graphs)
	g.ID = id // the store owns inserted graphs and renumbers them
	si := cur.ShardOf(id)
	set := cur.shards[si].set
	cA2F, cA2I := set.ContainedIn(g)

	ns := cur.clone()
	ns.fp = rollFp(cur.fp, 'i', id, g)
	ns.tag = makeTag(ns.kind, ns.fp, ns.epoch)
	ns.graphs = append(append(make([]*graph.Graph, 0, len(cur.graphs)+1), cur.graphs...), g)
	ns.live = append(append(make([]int, 0, len(cur.live)+1), cur.live...), id)
	old := cur.shards[si]
	ns.shards[si] = &shardSnap{
		id:  si,
		ids: append(append(make([]int, 0, len(old.ids)+1), old.ids...), id),
		set: set.ApplyInsert(id, cA2F, cA2I),
	}
	for _, i := range cA2F {
		ns.supF[i]++
	}
	for _, i := range cA2I {
		ns.supI[i]++
	}
	ns.recomputeMasks()
	b.cur.Store(ns)
	return id, nil
}

// DeleteGraph implements Store: tombstone the slot, splice the id out of the
// owning shard's index lists, and publish the new epoch. The id is never
// reused.
func (b *base) DeleteGraph(id int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	cur := b.cur.Load()
	if id < 0 || id >= len(cur.graphs) || cur.graphs[id] == nil {
		return fmt.Errorf("store: delete %d: %w", id, ErrNoSuchGraph)
	}
	if len(cur.live) == 1 {
		return fmt.Errorf("store: delete %d would leave it empty: %w", id, ErrEmptyDatabase)
	}
	si := cur.ShardOf(id)
	set, remF, remI := cur.shards[si].set.ApplyDelete(id)

	ns := cur.clone()
	ns.fp = rollFp(cur.fp, 'd', id, nil)
	ns.tag = makeTag(ns.kind, ns.fp, ns.epoch)
	ns.graphs = append([]*graph.Graph(nil), cur.graphs...)
	ns.graphs[id] = nil
	ns.live = intset.Diff(cur.live, []int{id})
	old := cur.shards[si]
	ns.shards[si] = &shardSnap{
		id:  si,
		ids: intset.Diff(old.ids, []int{id}),
		set: set,
	}
	for _, i := range remF {
		ns.supF[i]--
	}
	for _, i := range remI {
		ns.supI[i]--
	}
	ns.recomputeMasks()
	b.cur.Store(ns)
	return nil
}

// minSupportOf freezes the absolute frequency threshold at build time:
// ⌈α·|D|⌉ over the database the indexes were mined from. It deliberately
// does not float with the live graph count — re-deriving the threshold (and
// with it the whole vocabulary) is a rebuild, not a repair.
func minSupportOf(alpha float64, numGraphs int) int {
	return int(math.Ceil(alpha * float64(numGraphs)))
}

// fingerprint hashes the store's content identity — layout, slot table,
// per-graph shapes, and the exact per-shard index lists — so cache keys from
// stores with different contents (e.g. a layout reloaded over a different
// database) can never alias, while a faithful reload of the same content
// reproduces the same fingerprint and keeps sharing cache entries. It is
// computed once at construction; subsequent divergence within one store
// lineage is captured by the epoch in the tag. Callers must have sealed the
// shard sets first (DumpLists materializes list memos).
func fingerprint(kind string, graphs []*graph.Graph, shards []*shardSnap) string {
	h := fnv.New64a()
	write := func(vs ...int) {
		var buf [8]byte
		for _, v := range vs {
			u := uint64(v)
			for i := 0; i < 8; i++ {
				buf[i] = byte(u >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	h.Write([]byte(kind))
	write(len(graphs), len(shards))
	for id, g := range graphs {
		if g == nil {
			write(id, -1, -1)
			continue
		}
		write(id, g.NumNodes(), g.Size())
	}
	for _, sh := range shards {
		write(len(sh.ids))
		h.Write([]byte(sh.set.DumpLists()))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func makeTag(kind, fp string, epoch uint64) string {
	return fmt.Sprintf("%s:%s@%d", kind, fp, epoch)
}

// rollFp advances the lineage fingerprint over one mutation. The CacheTag
// contract — a tag identifies the computation completely — requires the
// fingerprint to capture the mutation *history*, not just a counter: two
// stores built from identical content that apply different mutation
// sequences reach the same epoch number with different databases, and an
// epoch-only tag would let their cache entries alias (a process-wide cache,
// like the verify-prefilter's signature tables, would then serve one
// store's features for the other's graphs). Chaining the previous
// fingerprint makes the tag a hash of the whole history; hashing the
// inserted graph's labeled structure (not just its shape) separates
// same-slot inserts of different graphs. Replicas applying the same
// sequence in lockstep — the rpcstore broadcast contract — hash identical
// inputs and keep identical tags, which Dial's topology check and the
// differential suites assert.
func rollFp(fp string, op byte, id int, g *graph.Graph) string {
	h := fnv.New64a()
	h.Write([]byte(fp))
	h.Write([]byte{op})
	write := func(vs ...int) {
		var buf [8]byte
		for _, v := range vs {
			u := uint64(v)
			for i := 0; i < 8; i++ {
				buf[i] = byte(u >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	write(id)
	if g != nil {
		write(g.NumNodes(), g.Size())
		for v := 0; v < g.NumNodes(); v++ {
			h.Write([]byte(g.Label(v)))
			h.Write([]byte{0})
		}
		for _, e := range g.Edges() {
			write(e.U, e.V)
			h.Write([]byte(g.EdgeLabel(e.U, e.V)))
			h.Write([]byte{0})
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// liveByShard distributes ascending live ids over n shards by the hash
// assignment, for constructors and loaders.
func liveByShard(graphs []*graph.Graph, n int) [][]int {
	parts := make([][]int, n)
	for id, g := range graphs {
		if g == nil {
			continue
		}
		si := shardOf(id, n)
		parts[si] = append(parts[si], id)
	}
	return parts
}

// sortedCopy is a small helper for loaders that deal in deleted-id sets.
func sortedCopy(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}
