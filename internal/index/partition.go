package index

import (
	"fmt"
	"sync"
	"time"

	"prague/internal/mining"
)

// PartitionStats reports where PartitionSets spent its wall time: the
// sequential split of the delta-encoded id lists, and the concurrent
// per-shard set construction (the phase that scales with cores).
type PartitionStats struct {
	SplitTime time.Duration
	BuildTime time.Duration
}

// PartitionSets splits one built index set into n per-shard sets for a
// hash-partitioned database: shard i indexes exactly the data graphs with
// shardOf(id) == i.
//
// Every shard keeps the full fragment vocabulary — identical entry ids,
// canonical codes, DAG structure, and Lookup classification — and restricts
// only the FSG identifier lists to the shard's graphs. Because the global
// lists partition cleanly by graph membership, the union of the per-shard
// lists reconstructs the monolithic list exactly; this is what makes sharded
// evaluation byte-identical to the monolithic path after a deterministic
// merge.
//
// The split itself operates on the delta encoding: delId(f) restricted to a
// shard is exactly the shard's delta encoding (set algebra:
// (L \ ∪children) ∩ S = (L ∩ S) \ ∪(child ∩ S)), so no global list is ever
// materialized. Each shard's set is then assembled — and its FSG lists
// reconstructed and memoized — by its own goroutine, which is where sharded
// index construction gains from multiple cores.
func PartitionSets(s *Set, n int, shardOf func(graphID int) int) ([]*Set, PartitionStats, error) {
	var stats PartitionStats
	if n < 1 {
		return nil, stats, fmt.Errorf("index: partition into %d shards", n)
	}
	if s == nil {
		return nil, stats, fmt.Errorf("index: partition a nil set")
	}

	t0 := time.Now()
	// A persisted set keeps DF-cluster payloads on disk; the split needs
	// every DelIds list, so load them all up front.
	s.A2F.mu.Lock()
	for _, e := range s.A2F.entries {
		s.A2F.ensureLoaded(e)
	}
	s.A2F.mu.Unlock()

	// Sequential single pass: split each entry's delta list and each DIF's
	// FSG list into per-shard sub-lists. Global lists are ascending, and the
	// split preserves order, so every sub-list stays sorted.
	bad := func(id, si int) error {
		return fmt.Errorf("index: shardOf(%d) = %d outside [0,%d)", id, si, n)
	}
	delParts := make([][][]int, n) // [shard][entry] -> delta ids
	difParts := make([][][]int, n) // [shard][dif] -> fsg ids
	for si := range delParts {
		delParts[si] = make([][]int, len(s.A2F.entries))
		difParts[si] = make([][]int, len(s.A2I.entries))
	}
	for i, e := range s.A2F.entries {
		for _, id := range e.DelIds {
			si := shardOf(id)
			if si < 0 || si >= n {
				return nil, stats, bad(id, si)
			}
			delParts[si][i] = append(delParts[si][i], id)
		}
	}
	for i, d := range s.A2I.entries {
		for _, id := range d.FSGIds {
			si := shardOf(id)
			if si < 0 || si >= n {
				return nil, stats, bad(id, si)
			}
			difParts[si][i] = append(difParts[si][i], id)
		}
	}
	graphCount := make([]int, n)
	for id := 0; id < s.NumGraphs; id++ {
		si := shardOf(id)
		if si < 0 || si >= n {
			return nil, stats, bad(id, si)
		}
		graphCount[si]++
	}
	stats.SplitTime = time.Since(t0)

	// Concurrent per-shard assembly: copy the (immutable, shared) DAG
	// metadata, install the shard's delta lists, rebuild the code maps, and
	// eagerly reconstruct the memoized FSG lists so first queries pay
	// nothing. Each shard is ~1/n of the total reconstruction work.
	t1 := time.Now()
	out := make([]*Set, n)
	var wg sync.WaitGroup
	for si := 0; si < n; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			out[si] = buildShardSet(s, delParts[si], difParts[si], graphCount[si])
		}(si)
	}
	wg.Wait()
	stats.BuildTime = time.Since(t1)
	return out, stats, nil
}

// buildShardSet assembles one shard's index set from the shard-restricted
// delta lists. Fragment graphs, codes, and DAG adjacency are shared with the
// source set (all immutable after Build).
func buildShardSet(src *Set, delIds, difIds [][]int, numGraphs int) *Set {
	a2f := &A2F{
		beta:      src.A2F.beta,
		byCode:    make(map[string]int, len(src.A2F.entries)),
		numGraphs: numGraphs,
	}
	for i, e := range src.A2F.entries {
		a2f.entries = append(a2f.entries, &a2fEntry{
			ID: e.ID, Code: e.Code, Size: e.Size, Graph: e.Graph,
			Parents: e.Parents, Children: e.Children,
			DelIds: delIds[i], Cluster: e.Cluster,
		})
		a2f.byCode[e.Code] = e.ID
	}
	for _, c := range src.A2F.clusters {
		a2f.clusters = append(a2f.clusters, &cluster{
			Root:    c.Root,
			Members: append([]int(nil), c.Members...),
			loaded:  true,
		})
	}
	for i := range a2f.entries {
		a2f.fsgIdsLocked(i) // warm the memo; no lock needed pre-publication
	}

	a2i := &A2I{byCode: make(map[string]int, len(src.A2I.entries))}
	for i, d := range src.A2I.entries {
		a2i.byCode[d.Code] = len(a2i.entries)
		a2i.entries = append(a2i.entries, shardFragment(d, difIds[i]))
	}
	return &Set{A2F: a2f, A2I: a2i, Alpha: src.Alpha, Beta: src.Beta, NumGraphs: numGraphs}
}

// shardFragment is a DIF restricted to one shard's graphs. Support follows
// the restricted list: it is the DIF's support within the shard.
func shardFragment(d *mining.Fragment, ids []int) *mining.Fragment {
	return &mining.Fragment{Code: d.Code, Graph: d.Graph, Support: len(ids), FSGIds: ids}
}
