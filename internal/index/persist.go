package index

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"prague/internal/graph"
	"prague/internal/mining"
)

// Persistence layout mirrors the paper's memory/disk split: the MF-index,
// the A²I-index and all DAG structure load eagerly; the DF-index fragment
// clusters live in a separate data file and are loaded per cluster on first
// access (the "disk-resident" component of A²F).

const (
	metaFile = "a2f.gob"
	dfFile   = "df.dat"
	a2iFile  = "a2i.gob"
)

type wireEntry struct {
	ID       int
	Code     string
	Size     int
	Parents  []int
	Children []int
	Cluster  int
	// MF-resident entries carry their payload inline; DF entries don't.
	DelIds []int
	Graph  *graph.Graph
}

type wireMeta struct {
	Beta           int
	Alpha          float64
	NumGraphs      int
	Entries        []wireEntry
	ClusterRoots   []int
	ClusterOffsets []int64 // byte offsets into df.dat
}

type wireClusterEntry struct {
	ID     int
	DelIds []int
	Graph  *graph.Graph
}

type wireCluster struct {
	Entries []wireClusterEntry
}

type wireDIF struct {
	Code    string
	Graph   *graph.Graph
	Support int
	FSGIds  []int
}

type dfStore struct {
	path    string
	offsets []int64
}

// Save persists the index set into dir (created if needed).
func (s *Set) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	// DF clusters first, recording offsets.
	df, err := os.Create(filepath.Join(dir, dfFile))
	if err != nil {
		return err
	}
	defer df.Close()
	offsets := make([]int64, len(s.A2F.clusters))
	var pos int64
	for ci, c := range s.A2F.clusters {
		offsets[ci] = pos
		var wc wireCluster
		for _, id := range c.Members {
			e := s.A2F.entries[id]
			wc.Entries = append(wc.Entries, wireClusterEntry{ID: id, DelIds: e.DelIds, Graph: e.Graph})
		}
		cw := &countingWriter{w: df}
		if err := gob.NewEncoder(cw).Encode(wc); err != nil {
			return fmt.Errorf("index: encoding DF cluster %d: %w", ci, err)
		}
		c.bytes = cw.n
		pos += cw.n
	}

	meta := wireMeta{
		Beta:           s.Beta,
		Alpha:          s.Alpha,
		NumGraphs:      s.NumGraphs,
		ClusterOffsets: offsets,
	}
	for _, c := range s.A2F.clusters {
		meta.ClusterRoots = append(meta.ClusterRoots, c.Root)
	}
	for _, e := range s.A2F.entries {
		we := wireEntry{
			ID: e.ID, Code: e.Code, Size: e.Size,
			Parents: e.Parents, Children: e.Children, Cluster: e.Cluster,
		}
		if e.Cluster < 0 { // MF-resident: payload inline
			we.DelIds = e.DelIds
			we.Graph = e.Graph
		}
		meta.Entries = append(meta.Entries, we)
	}
	if err := writeGob(filepath.Join(dir, metaFile), meta); err != nil {
		return err
	}

	var difs []wireDIF
	for _, d := range s.A2I.entries {
		difs = append(difs, wireDIF{Code: d.Code, Graph: d.Graph, Support: d.Support, FSGIds: d.FSGIds})
	}
	return writeGob(filepath.Join(dir, a2iFile), difs)
}

// Load reads a persisted index set from dir. DF clusters are left on disk
// and loaded lazily on first access.
func Load(dir string) (*Set, error) {
	var meta wireMeta
	if err := readGob(filepath.Join(dir, metaFile), &meta); err != nil {
		return nil, err
	}
	a2f := &A2F{
		beta:      meta.Beta,
		byCode:    make(map[string]int, len(meta.Entries)),
		numGraphs: meta.NumGraphs,
		store:     &dfStore{path: filepath.Join(dir, dfFile), offsets: meta.ClusterOffsets},
	}
	for _, we := range meta.Entries {
		a2f.entries = append(a2f.entries, &a2fEntry{
			ID: we.ID, Code: we.Code, Size: we.Size,
			Parents: we.Parents, Children: we.Children, Cluster: we.Cluster,
			DelIds: we.DelIds, Graph: we.Graph,
		})
		a2f.byCode[we.Code] = we.ID
	}
	for ci, root := range meta.ClusterRoots {
		c := &cluster{Root: root, loaded: false}
		for _, e := range a2f.entries {
			if e.Cluster == ci {
				c.Members = append(c.Members, e.ID)
			}
		}
		a2f.clusters = append(a2f.clusters, c)
	}

	var difs []wireDIF
	if err := readGob(filepath.Join(dir, a2iFile), &difs); err != nil {
		return nil, err
	}
	a2i := &A2I{byCode: map[string]int{}}
	for _, d := range difs {
		a2i.byCode[d.Code] = len(a2i.entries)
		a2i.entries = append(a2i.entries, &mining.Fragment{
			Code: d.Code, Graph: d.Graph, Support: d.Support, FSGIds: d.FSGIds,
		})
	}
	return &Set{A2F: a2f, A2I: a2i, Alpha: meta.Alpha, Beta: meta.Beta, NumGraphs: meta.NumGraphs}, nil
}

func (st *dfStore) loadCluster(f *A2F, ci int) error {
	file, err := os.Open(st.path)
	if err != nil {
		return err
	}
	defer file.Close()
	if _, err := file.Seek(st.offsets[ci], io.SeekStart); err != nil {
		return err
	}
	var wc wireCluster
	if err := gob.NewDecoder(file).Decode(&wc); err != nil {
		return err
	}
	for _, we := range wc.Entries {
		e := f.entries[we.ID]
		e.DelIds = we.DelIds
		e.Graph = we.Graph
	}
	f.clusters[ci].loaded = true
	return nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeGob(path string, v any) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(file).Encode(v); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

func readGob(path string, v any) error {
	file, err := os.Open(path)
	if err != nil {
		return err
	}
	defer file.Close()
	return gob.NewDecoder(file).Decode(v)
}
