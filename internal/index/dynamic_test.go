package index

import (
	"math/rand"
	"testing"

	"prague/internal/graph"
)

// rebuildDump is the oracle view: every list reconstructed from scratch over
// the given live ids.
func rebuildDump(s *Set, ids []int, db []*graph.Graph) string {
	return s.RebuildLists(ids, func(id int) *graph.Graph { return db[id] }).DumpLists()
}

func TestContainedInMatchesDirectScan(t *testing.T) {
	db := testDB(t, 7, 30)
	set, _ := buildSet(t, db, 0.25, 2)
	for _, g := range db {
		a2f, a2i := set.ContainedIn(g)
		fset := map[int]bool{}
		for _, i := range a2f {
			fset[i] = true
		}
		for i := 0; i < set.A2F.NumEntries(); i++ {
			want := graph.SubgraphIsomorphic(set.A2F.Fragment(i), g)
			if fset[i] != want {
				t.Fatalf("graph %d, a2f entry %d: ContainedIn=%v direct=%v", g.ID, i, fset[i], want)
			}
		}
		iset := map[int]bool{}
		for _, i := range a2i {
			iset[i] = true
		}
		for i := 0; i < set.A2I.NumEntries(); i++ {
			want := graph.SubgraphIsomorphic(set.A2I.Fragment(i), g)
			if iset[i] != want {
				t.Fatalf("graph %d, a2i entry %d: ContainedIn=%v direct=%v", g.ID, i, iset[i], want)
			}
		}
	}
}

func TestInitialBuildMatchesRebuild(t *testing.T) {
	db := testDB(t, 3, 25)
	set, _ := buildSet(t, db, 0.25, 2)
	ids := make([]int, len(db))
	for i := range ids {
		ids[i] = i
	}
	if got, want := set.DumpLists(), rebuildDump(set, ids, db); got != want {
		t.Fatalf("built set's lists differ from from-scratch rebuild:\n got: %s\nwant: %s", got, want)
	}
}

func TestIncrementalScriptMatchesRebuild(t *testing.T) {
	// Build over a prefix, then replay a deterministic interleaved
	// insert/delete script; after every step the surgically-maintained lists
	// must be byte-identical to a from-scratch rebuild over the live ids.
	all := testDB(t, 11, 40)
	base := 25
	set, _ := buildSet(t, all[:base], 0.25, 2)

	r := rand.New(rand.NewSource(99))
	live := map[int]bool{}
	for i := 0; i < base; i++ {
		live[i] = true
	}
	next := base
	for step := 0; step < 25; step++ {
		if next < len(all) && (len(live) == 0 || r.Intn(2) == 0) {
			g := all[next]
			a2f, a2i := set.ContainedIn(g)
			set = set.ApplyInsert(g.ID, a2f, a2i)
			live[g.ID] = true
			next++
		} else {
			var ids []int
			for id := range live {
				ids = append(ids, id)
			}
			if len(ids) == 0 {
				continue
			}
			victim := ids[r.Intn(len(ids))]
			set, _, _ = set.ApplyDelete(victim)
			delete(live, victim)
		}
		var ids []int
		for id := 0; id < len(all); id++ {
			if live[id] {
				ids = append(ids, id)
			}
		}
		if got, want := set.DumpLists(), rebuildDump(set, ids, all); got != want {
			t.Fatalf("step %d: incremental lists diverged from rebuild:\n got: %s\nwant: %s", step, got, want)
		}
		if set.NumGraphs != len(ids) {
			t.Fatalf("step %d: NumGraphs=%d, live=%d", step, set.NumGraphs, len(ids))
		}
	}
}

func TestCopyOnWriteLeavesOldSetIntact(t *testing.T) {
	db := testDB(t, 5, 20)
	set, _ := buildSet(t, db, 0.25, 2)
	before := set.DumpLists()

	extra := testDB(t, 6, 21)[20]
	a2f, a2i := set.ContainedIn(extra)
	if len(a2f) == 0 {
		t.Fatalf("test graph shares no fragment with the vocabulary; pick a richer seed")
	}
	mutated := set.ApplyInsert(extra.ID, a2f, a2i)
	if set.DumpLists() != before {
		t.Fatal("ApplyInsert mutated the receiver set")
	}
	if mutated.DumpLists() == before {
		t.Fatal("ApplyInsert returned an unchanged set for a contained graph")
	}

	reverted, _, _ := mutated.ApplyDelete(extra.ID)
	if got := reverted.DumpLists(); got != before {
		t.Fatalf("insert+delete did not round-trip:\n got: %s\nwant: %s", got, before)
	}
	if mutated.DumpLists() == before {
		t.Fatal("ApplyDelete mutated its receiver")
	}
}

func TestApplyDeleteReportsRemovals(t *testing.T) {
	db := testDB(t, 8, 20)
	set, _ := buildSet(t, db, 0.25, 2)
	victim := 7
	_, removedF, removedI := set.ApplyDelete(victim)
	for i := 0; i < set.A2F.NumEntries(); i++ {
		want := graph.SubgraphIsomorphic(set.A2F.Fragment(i), db[victim])
		got := false
		for _, id := range removedF {
			if id == i {
				got = true
			}
		}
		if got != want {
			t.Fatalf("a2f entry %d: removed=%v contained=%v", i, got, want)
		}
	}
	for i := 0; i < set.A2I.NumEntries(); i++ {
		want := graph.SubgraphIsomorphic(set.A2I.Fragment(i), db[victim])
		got := false
		for _, id := range removedI {
			if id == i {
				got = true
			}
		}
		if got != want {
			t.Fatalf("a2i entry %d: removed=%v contained=%v", i, got, want)
		}
	}
}

func TestDIFParentsAreFrequentMaximalSubgraphs(t *testing.T) {
	db := testDB(t, 9, 25)
	set, _ := buildSet(t, db, 0.25, 2)
	for i := 0; i < set.A2I.NumEntries(); i++ {
		d := set.A2I.Fragment(i)
		for _, p := range set.DIFParents(i) {
			pf := set.A2F.Fragment(p)
			if pf.Size() != d.Size()-1 {
				t.Fatalf("dif %d: parent %d has size %d, want %d", i, p, pf.Size(), d.Size()-1)
			}
			if !graph.SubgraphIsomorphic(pf, d) {
				t.Fatalf("dif %d: parent %d is not a subgraph", i, p)
			}
		}
	}
}
