// Package index implements GBLENDER's action-aware indexing schemes, which
// PRAGUE reuses (paper §III): the action-aware frequent index A²F — a
// memory-resident MF-index for frequent fragments of size ≤ β and a
// disk-resident DF-index of fragment clusters for larger ones, with
// delta-encoded FSG identifier lists (delId) — and the action-aware
// infrequent index A²I over discriminative infrequent fragments (DIFs).
package index

import (
	"fmt"
	"sort"
	"sync"

	"prague/internal/graph"
	"prague/internal/mining"
)

// Kind classifies a fragment with respect to the indexes.
type Kind int

const (
	// KindNone means the fragment is neither indexed as frequent nor as a
	// DIF (it is a NIF, or absent from the database entirely).
	KindNone Kind = iota
	// KindFrequent means the fragment is in the A²F-index.
	KindFrequent
	// KindDIF means the fragment is in the A²I-index.
	KindDIF
)

func (k Kind) String() string {
	switch k {
	case KindFrequent:
		return "frequent"
	case KindDIF:
		return "dif"
	default:
		return "none"
	}
}

// A2F is the action-aware frequent index. Vertices form a DAG: an edge
// f' -> f exists iff f' ⊂ f and |f| = |f'|+1. Each vertex stores only
// delId(f) = fsgIds(f) minus the union of its children's FSG ids; full id
// lists are reconstructed (and memoized) on demand, loading DF clusters
// lazily from disk when the index has been persisted.
type A2F struct {
	beta    int
	entries []*a2fEntry
	byCode  map[string]int

	clusters  []*cluster // DF-index: fragment clusters for |f| > beta
	store     *dfStore   // nil until persisted/loaded; then clusters load lazily
	numGraphs int

	// mu guards the lazy parts (per-entry fsgIds memoization and DF
	// cluster loading) so concurrent sessions can share one index.
	mu sync.Mutex
}

type a2fEntry struct {
	ID       int
	Code     string
	Size     int
	Graph    *graph.Graph
	Parents  []int
	Children []int
	DelIds   []int // delta-encoded FSG ids
	Cluster  int   // -1 for MF-resident entries

	fsgIds []int // memoized reconstruction
}

// cluster is one DF-index fragment cluster: the entries of all fragments
// whose smallest size-(β+1) ancestor is the cluster root.
type cluster struct {
	Root    int   // entry id of the root fragment (size β+1)
	Members []int // entry ids, including the root
	loaded  bool
	bytes   int64 // serialized size, for reporting
}

// A2I is the action-aware infrequent index: DIFs in ascending size order,
// each entry holding the fragment's canonical code and its FSG ids.
type A2I struct {
	entries []*mining.Fragment
	byCode  map[string]int

	// parents caches, per DIF, the a2f entry ids of its maximal proper
	// connected subgraphs (dynamic.go). Computed once per vocabulary under
	// the store's mutation serialization and shared by copy-on-write
	// descendants; concurrent readers never touch it.
	parents [][]int
}

// Set bundles the two action-aware indexes plus the parameters they were
// built with.
type Set struct {
	A2F       *A2F
	A2I       *A2I
	Alpha     float64
	Beta      int
	NumGraphs int
}

// Build constructs the action-aware indexes from a mining result. beta is the
// fragment size threshold separating MF- from DF-resident fragments.
func Build(res *mining.Result, alpha float64, beta int) (*Set, error) {
	if beta < 1 {
		return nil, fmt.Errorf("index: beta must be ≥ 1, got %d", beta)
	}

	a2f := &A2F{beta: beta, byCode: map[string]int{}, numGraphs: res.NumGraphs}
	for i, f := range res.Frequent {
		a2f.entries = append(a2f.entries, &a2fEntry{
			ID:      i,
			Code:    f.Code,
			Size:    f.Size(),
			Graph:   f.Graph,
			Cluster: -1,
		})
		a2f.byCode[f.Code] = i
	}

	// DAG edges: for each fragment of size > 1, connect to each maximal
	// proper connected subgraph (all of which are frequent by apriori).
	for i, f := range res.Frequent {
		if f.Size() == 1 {
			continue
		}
		seen := map[int]bool{}
		for _, e := range f.Graph.Edges() {
			sub, err := f.Graph.DeleteEdge(e.U, e.V)
			if err != nil {
				return nil, err
			}
			if !sub.Connected() {
				continue
			}
			pid, ok := a2f.byCode[graph.CanonicalCode(sub)]
			if !ok {
				return nil, fmt.Errorf("index: apriori violation: subgraph of %s not frequent", f.Code)
			}
			if !seen[pid] {
				seen[pid] = true
				a2f.entries[pid].Children = append(a2f.entries[pid].Children, i)
				a2f.entries[i].Parents = append(a2f.entries[i].Parents, pid)
			}
		}
	}

	// delId(f) = fsgIds(f) \ ∪ fsgIds(child). Children's FSG ids are
	// subsets of f's, so this is a pure delta encoding.
	for i, f := range res.Frequent {
		covered := map[int]bool{}
		for _, c := range a2f.entries[i].Children {
			for _, id := range res.Frequent[c].FSGIds {
				covered[id] = true
			}
		}
		for _, id := range f.FSGIds {
			if !covered[id] {
				a2f.entries[i].DelIds = append(a2f.entries[i].DelIds, id)
			}
		}
	}

	// DF clustering: each entry of size > β is assigned to the cluster of
	// its smallest (by entry id) size-(β+1) ancestor.
	clusterOf := map[int]int{} // root entry id -> cluster index
	var order []int
	for i := range a2f.entries {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool { return a2f.entries[order[a]].Size < a2f.entries[order[b]].Size })
	rootOf := make([]int, len(a2f.entries)) // entry -> root entry id (or -1)
	for i := range rootOf {
		rootOf[i] = -1
	}
	for _, i := range order {
		e := a2f.entries[i]
		if e.Size == beta+1 {
			rootOf[i] = i
		} else if e.Size > beta+1 {
			best := -1
			for _, p := range e.Parents {
				if r := rootOf[p]; r != -1 && (best == -1 || r < best) {
					best = r
				}
			}
			rootOf[i] = best
		}
	}
	for _, i := range order {
		if rootOf[i] == -1 {
			continue
		}
		root := rootOf[i]
		ci, ok := clusterOf[root]
		if !ok {
			ci = len(a2f.clusters)
			clusterOf[root] = ci
			a2f.clusters = append(a2f.clusters, &cluster{Root: root, loaded: true})
		}
		a2f.clusters[ci].Members = append(a2f.clusters[ci].Members, i)
		a2f.entries[i].Cluster = ci
	}

	a2i := &A2I{byCode: map[string]int{}}
	for _, d := range res.DIFs { // already sorted ascending by size
		a2i.byCode[d.Code] = len(a2i.entries)
		a2i.entries = append(a2i.entries, d)
	}

	return &Set{A2F: a2f, A2I: a2i, Alpha: alpha, Beta: beta, NumGraphs: res.NumGraphs}, nil
}

// Lookup classifies the fragment with the given canonical code: frequent
// (with its a2fId), DIF (with its a2iId), or unindexed.
func (s *Set) Lookup(code string) (Kind, int) {
	if id, ok := s.A2F.byCode[code]; ok {
		return KindFrequent, id
	}
	if id, ok := s.A2I.byCode[code]; ok {
		return KindDIF, id
	}
	return KindNone, -1
}

// FSGIds returns the candidate FSG ids for an indexed fragment.
func (s *Set) FSGIds(kind Kind, id int) []int {
	switch kind {
	case KindFrequent:
		return s.A2F.FSGIds(id)
	case KindDIF:
		return s.A2I.FSGIds(id)
	default:
		return nil
	}
}

// NumEntries returns the number of indexed frequent fragments.
func (f *A2F) NumEntries() int { return len(f.entries) }

// Beta returns the fragment size threshold.
func (f *A2F) Beta() int { return f.beta }

// IDByCode returns the a2fId of the frequent fragment with the given code.
func (f *A2F) IDByCode(code string) (int, bool) {
	id, ok := f.byCode[code]
	return id, ok
}

// Fragment returns the fragment graph of entry id.
func (f *A2F) Fragment(id int) *graph.Graph { return f.entries[id].Graph }

// Code returns the canonical code of entry id.
func (f *A2F) Code(id int) string { return f.entries[id].Code }

// FragmentSize returns |f| of entry id.
func (f *A2F) FragmentSize(id int) int { return f.entries[id].Size }

// Children returns the child entry ids (immediate frequent supergraphs).
func (f *A2F) Children(id int) []int { return f.entries[id].Children }

// FSGIds reconstructs the full FSG identifier list of entry id from the
// delta encoding, memoizing the result. Entries living in a persisted DF
// cluster are loaded from disk on first touch. Safe for concurrent use: the
// lazy reconstruction is serialized, and the returned slice is never
// mutated afterwards (callers must treat it as read-only).
func (f *A2F) FSGIds(id int) []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fsgIdsLocked(id)
}

func (f *A2F) fsgIdsLocked(id int) []int {
	e := f.entries[id]
	if e.fsgIds != nil {
		return e.fsgIds
	}
	f.ensureLoaded(e)
	set := map[int]bool{}
	for _, d := range e.DelIds {
		set[d] = true
	}
	for _, c := range e.Children {
		for _, d := range f.fsgIdsLocked(c) {
			set[d] = true
		}
	}
	ids := make([]int, 0, len(set))
	for d := range set {
		ids = append(ids, d)
	}
	sort.Ints(ids)
	e.fsgIds = ids
	return ids
}

func (f *A2F) ensureLoaded(e *a2fEntry) {
	if e.Cluster < 0 || f.store == nil {
		return
	}
	c := f.clusters[e.Cluster]
	if c.loaded {
		return
	}
	if err := f.store.loadCluster(f, e.Cluster); err != nil {
		// A persisted index with an unreadable backing file is a
		// programming/deployment error surfaced at Load time; here it
		// means the file vanished mid-run.
		panic(fmt.Sprintf("index: DF cluster %d unreadable: %v", e.Cluster, err))
	}
}

// NumEntries returns the number of DIFs.
func (a *A2I) NumEntries() int { return len(a.entries) }

// IDByCode returns the a2iId of the DIF with the given code.
func (a *A2I) IDByCode(code string) (int, bool) {
	id, ok := a.byCode[code]
	return id, ok
}

// Fragment returns the DIF graph of entry id.
func (a *A2I) Fragment(id int) *graph.Graph { return a.entries[id].Graph }

// Code returns the canonical code of DIF entry id.
func (a *A2I) Code(id int) string { return a.entries[id].Code }

// FSGIds returns the FSG identifier list of DIF entry id.
func (a *A2I) FSGIds(id int) []int { return a.entries[id].FSGIds }

// SizeBytes estimates the serialized footprint of the indexes (used to
// reproduce Table II and Figure 10(a)): codes, DAG edges and identifier
// lists, with 4-byte integers, matching how the paper reports index sizes.
func (s *Set) SizeBytes() (total, a2f, a2i int64) {
	for _, e := range s.A2F.entries {
		a2f += int64(len(e.Code))
		a2f += 4 * int64(len(e.Parents)+len(e.Children)+len(e.DelIds)+2)
	}
	for _, d := range s.A2I.entries {
		a2i += int64(len(d.Code))
		a2i += 4 * int64(len(d.FSGIds)+1)
	}
	return a2f + a2i, a2f, a2i
}

// MFEntries and DFEntries report how many frequent fragments live in the
// memory- and disk-resident components respectively.
func (f *A2F) MFEntries() (n int) {
	for _, e := range f.entries {
		if e.Cluster < 0 {
			n++
		}
	}
	return n
}

// DFEntries reports the number of DF-resident fragments.
func (f *A2F) DFEntries() int { return len(f.entries) - f.MFEntries() }

// NumClusters reports the number of DF fragment clusters.
func (f *A2F) NumClusters() int { return len(f.clusters) }
