package index

import (
	"math/rand"
	"testing"

	"prague/internal/graph"
	"prague/internal/mining"
)

func testDB(t *testing.T, seed int64, n int) []*graph.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	labels := []string{"C", "N", "O"}
	var db []*graph.Graph
	for i := 0; i < n; i++ {
		nodes := 3 + r.Intn(6)
		g := graph.New(i)
		for v := 0; v < nodes; v++ {
			g.AddNode(labels[r.Intn(len(labels))])
		}
		for v := 1; v < nodes; v++ {
			g.MustAddEdge(v, r.Intn(v))
		}
		for k := 0; k < r.Intn(3); k++ {
			u, v := r.Intn(nodes), r.Intn(nodes)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		db = append(db, g)
	}
	return db
}

func buildSet(t *testing.T, db []*graph.Graph, alpha float64, beta int) (*Set, *mining.Result) {
	t.Helper()
	res, err := mining.Mine(db, mining.Options{MinSupportRatio: alpha, MaxSize: 6, IncludeZeroSupportPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	set, err := Build(res, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	return set, res
}

func TestBuildValidation(t *testing.T) {
	db := testDB(t, 1, 5)
	res, err := mining.Mine(db, mining.Options{MinSupportRatio: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(res, 0.3, 0); err == nil {
		t.Error("beta = 0 accepted")
	}
}

func TestFSGIdsMatchMiner(t *testing.T) {
	db := testDB(t, 2, 25)
	set, res := buildSet(t, db, 0.2, 2)
	for _, f := range res.Frequent {
		id, ok := set.A2F.IDByCode(f.Code)
		if !ok {
			t.Fatalf("frequent fragment %s not indexed", f.Code)
		}
		got := set.A2F.FSGIds(id)
		if len(got) != len(f.FSGIds) {
			t.Fatalf("fragment %s: reconstructed %d ids, want %d", f.Code, len(got), len(f.FSGIds))
		}
		for i := range got {
			if got[i] != f.FSGIds[i] {
				t.Fatalf("fragment %s: ids differ at %d", f.Code, i)
			}
		}
	}
	for _, d := range res.DIFs {
		id, ok := set.A2I.IDByCode(d.Code)
		if !ok {
			t.Fatalf("DIF %s not indexed", d.Code)
		}
		if len(set.A2I.FSGIds(id)) != len(d.FSGIds) {
			t.Fatalf("DIF %s: wrong FSG ids", d.Code)
		}
	}
}

func TestDelIdDeltaEncodingIsProper(t *testing.T) {
	// delId(f) must be disjoint from every child's FSG ids: the encoding
	// stores only ids not covered by descendants.
	db := testDB(t, 3, 30)
	set, _ := buildSet(t, db, 0.2, 2)
	for _, e := range set.A2F.entries {
		childIds := map[int]bool{}
		for _, c := range e.Children {
			for _, id := range set.A2F.FSGIds(c) {
				childIds[id] = true
			}
		}
		for _, id := range e.DelIds {
			if childIds[id] {
				t.Fatalf("entry %s: delId %d also covered by a child", e.Code, id)
			}
		}
	}
}

func TestMFDFPartition(t *testing.T) {
	db := testDB(t, 4, 30)
	beta := 2
	set, _ := buildSet(t, db, 0.15, beta)
	for _, e := range set.A2F.entries {
		if e.Size <= beta && e.Cluster != -1 {
			t.Errorf("size-%d fragment assigned to DF cluster", e.Size)
		}
		if e.Size > beta && e.Cluster == -1 {
			t.Errorf("size-%d fragment left in MF", e.Size)
		}
	}
	if set.A2F.MFEntries()+set.A2F.DFEntries() != set.A2F.NumEntries() {
		t.Error("MF/DF partition does not cover all entries")
	}
	if set.A2F.DFEntries() > 0 && set.A2F.NumClusters() == 0 {
		t.Error("DF entries exist but no clusters")
	}
}

func TestLookupKinds(t *testing.T) {
	db := testDB(t, 5, 25)
	set, res := buildSet(t, db, 0.2, 2)
	for _, f := range res.Frequent {
		if k, _ := set.Lookup(f.Code); k != KindFrequent {
			t.Errorf("frequent fragment classified %v", k)
		}
	}
	for _, d := range res.DIFs {
		if k, _ := set.Lookup(d.Code); k != KindDIF {
			t.Errorf("DIF classified %v", k)
		}
	}
	if k, _ := set.Lookup("(0,1,Zz,Zz)"); k != KindNone {
		t.Errorf("unknown code classified %v", k)
	}
	if KindFrequent.String() != "frequent" || KindDIF.String() != "dif" || KindNone.String() != "none" {
		t.Error("Kind.String broken")
	}
}

func TestSubsetContainmentProperty(t *testing.T) {
	// f' ⊂ f ⇒ fsgIds(f) ⊆ fsgIds(f') — the property delId exploits.
	db := testDB(t, 6, 25)
	set, _ := buildSet(t, db, 0.2, 2)
	for _, e := range set.A2F.entries {
		own := map[int]bool{}
		for _, id := range set.A2F.FSGIds(e.ID) {
			own[id] = true
		}
		for _, c := range e.Children {
			for _, id := range set.A2F.FSGIds(c) {
				if !own[id] {
					t.Fatalf("child %s id %d missing from parent %s", set.A2F.Code(c), id, e.Code)
				}
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := testDB(t, 7, 30)
	set, res := buildSet(t, db, 0.15, 2)
	dir := t.TempDir()
	if err := set.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Beta != set.Beta || loaded.NumGraphs != set.NumGraphs || loaded.Alpha != set.Alpha {
		t.Error("metadata changed across persistence")
	}
	if loaded.A2F.NumEntries() != set.A2F.NumEntries() || loaded.A2I.NumEntries() != set.A2I.NumEntries() {
		t.Fatal("entry counts changed")
	}
	// Lazy DF loading: reconstruct every fragment's ids and compare to the
	// miner's ground truth.
	for _, f := range res.Frequent {
		id, ok := loaded.A2F.IDByCode(f.Code)
		if !ok {
			t.Fatalf("fragment %s lost", f.Code)
		}
		got := loaded.A2F.FSGIds(id)
		if len(got) != len(f.FSGIds) {
			t.Fatalf("fragment %s: %d ids after load, want %d", f.Code, len(got), len(f.FSGIds))
		}
		for i := range got {
			if got[i] != f.FSGIds[i] {
				t.Fatalf("fragment %s: ids differ after load", f.Code)
			}
		}
	}
	for _, d := range res.DIFs {
		id, ok := loaded.A2I.IDByCode(d.Code)
		if !ok {
			t.Fatalf("DIF %s lost", d.Code)
		}
		if len(loaded.A2I.FSGIds(id)) != len(d.FSGIds) {
			t.Fatalf("DIF %s ids changed", d.Code)
		}
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("loading an empty directory succeeded")
	}
}

func TestSizeBytesPositive(t *testing.T) {
	db := testDB(t, 8, 20)
	set, _ := buildSet(t, db, 0.2, 2)
	total, a2f, a2i := set.SizeBytes()
	if total != a2f+a2i || total <= 0 {
		t.Errorf("size accounting broken: total=%d a2f=%d a2i=%d", total, a2f, a2i)
	}
}
