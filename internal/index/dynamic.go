// Incremental maintenance of the action-aware indexes under online graph
// mutation. The fragment vocabulary (entries, canonical codes, DAG structure,
// entry identifiers) is frozen at build time; what mutations maintain are the
// FSG identifier lists — the A²F delta lists and the A²I id-lists — by
// appending the new graph's id to every containing fragment on insert and
// splicing it out of every list on delete. Because inserted ids are strictly
// increasing and never reused, sorted order is preserved by construction.
//
// Reclassification when supports cross the frequency threshold (negative-
// border repair) is deliberately NOT represented here: entry ids are baked
// into SPIG fragment lists and cache keys across sessions, so entries never
// move between A²F and A²I. The store layer instead derives a masking of
// entries whose support crossed the threshold (see prague/internal/store),
// which demotes them to the always-sound NIF path. The lists themselves stay
// exact either way, which is the property every answer path relies on.
//
// All mutating methods are copy-on-write: they return a new Set sharing every
// untouched entry with the receiver, so readers pinned to an older epoch keep
// a consistent view. Callers must serialize mutations externally (the store's
// mutation mutex does); the returned sets are safe for concurrent readers.
package index

import (
	"fmt"
	"sort"
	"strings"

	"prague/internal/graph"
	"prague/internal/mining"
)

// Seal force-loads every DF cluster and materializes every entry's memoized
// FSG list, making the set fully memory-resident. A sealed set never lazily
// writes entry state again, which is what makes copy-on-write surgery safe:
// snapshots sharing untouched entry pointers only ever read them. Sealing is
// idempotent; mutating methods call it defensively.
func (s *Set) Seal() {
	s.A2F.mu.Lock()
	defer s.A2F.mu.Unlock()
	for _, e := range s.A2F.entries {
		s.A2F.ensureLoaded(e)
	}
	for i := range s.A2F.entries {
		s.A2F.fsgIdsLocked(i)
	}
}

// sizeOrder returns entry ids sorted by fragment size (ties by id), the
// top-down traversal order of the DAG: every parent (maximal proper subgraph,
// size-1 smaller) precedes its children.
func (f *A2F) sizeOrder() []int {
	order := make([]int, len(f.entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := f.entries[order[a]], f.entries[order[b]]
		if ea.Size != eb.Size {
			return ea.Size < eb.Size
		}
		return ea.ID < eb.ID
	})
	return order
}

// difParents returns, per A²I entry, the a2f entry ids of the DIF's maximal
// proper connected subgraphs (all frequent by the DIF definition; size-1 DIFs
// have none). Computed once per vocabulary and shared across copy-on-write
// descendants; callers must hold the store's mutation serialization.
func (s *Set) difParents() [][]int {
	if s.A2I.parents != nil {
		return s.A2I.parents
	}
	parents := make([][]int, len(s.A2I.entries))
	for i, d := range s.A2I.entries {
		if d.Size() <= 1 {
			continue
		}
		seen := map[int]bool{}
		for _, e := range d.Graph.Edges() {
			sub, err := d.Graph.DeleteEdge(e.U, e.V)
			if err != nil || !sub.Connected() {
				continue
			}
			if pid, ok := s.A2F.byCode[graph.CanonicalCode(sub)]; ok && !seen[pid] {
				seen[pid] = true
				parents[i] = append(parents[i], pid)
			}
		}
		sort.Ints(parents[i])
	}
	s.A2I.parents = parents
	return parents
}

// DIFParents exposes the a2f entry ids of DIF i's maximal proper connected
// subgraphs — the edge of the negative border the DIF sits on. The store
// layer uses it to mask DIFs whose border became invalid (a parent dropped
// below the support threshold).
func (s *Set) DIFParents(i int) []int { return s.difParents()[i] }

// ContainedIn classifies a data graph against the frozen vocabulary: the a2f
// and a2i entry ids of every indexed fragment subgraph-isomorphic to g, both
// ascending. The A²F DAG is walked top-down with apriori pruning (an entry is
// tested only when all of its maximal proper subgraphs are contained), and
// A²I entries are pruned through their cached frequent parents the same way.
// Must be serialized with other mutating calls on the same vocabulary.
func (s *Set) ContainedIn(g *graph.Graph) (a2f, a2i []int) {
	s.Seal()
	f := s.A2F
	contained := make([]bool, len(f.entries))
	for _, i := range f.sizeOrder() {
		e := f.entries[i]
		if e.Size > g.Size() {
			continue
		}
		ok := true
		for _, p := range e.Parents {
			if !contained[p] {
				ok = false
				break
			}
		}
		if ok && graph.SubgraphIsomorphic(e.Graph, g) {
			contained[i] = true
			a2f = append(a2f, i)
		}
	}
	sort.Ints(a2f)

	parents := s.difParents()
	for i, d := range s.A2I.entries {
		if d.Size() > g.Size() {
			continue
		}
		ok := true
		for _, p := range parents[i] {
			if !contained[p] {
				ok = false
				break
			}
		}
		if ok && graph.SubgraphIsomorphic(d.Graph, g) {
			a2i = append(a2i, i)
		}
	}
	return a2f, a2i
}

// ApplyInsert returns a copy-on-write descendant of the set with graph id gid
// appended to the lists of the given contained entries (as classified by
// ContainedIn against this set's vocabulary, restricted by the store to the
// owning shard). gid must exceed every id already indexed — ids are never
// reused — so sorted appends preserve order. The delta encoding is
// maintained: gid lands in DelIds(f) exactly when no contained child covers
// it, and in the memoized full list of every contained entry.
func (s *Set) ApplyInsert(gid int, a2fIDs, a2iIDs []int) *Set {
	s.Seal()
	f := s.A2F
	nf := &A2F{
		beta:      f.beta,
		entries:   make([]*a2fEntry, len(f.entries)),
		byCode:    f.byCode,
		clusters:  f.clusters,
		numGraphs: f.numGraphs + 1,
	}
	copy(nf.entries, f.entries)
	containedF := make(map[int]bool, len(a2fIDs))
	for _, i := range a2fIDs {
		containedF[i] = true
	}
	for _, i := range a2fIDs {
		old := nf.entries[i]
		e := *old
		e.fsgIds = appendSorted(old.fsgIds, gid)
		inChild := false
		for _, c := range old.Children {
			if containedF[c] {
				inChild = true
				break
			}
		}
		if !inChild {
			e.DelIds = appendSorted(old.DelIds, gid)
		}
		nf.entries[i] = &e
	}

	a := s.A2I
	na := &A2I{
		entries: make([]*mining.Fragment, len(a.entries)),
		byCode:  a.byCode,
		parents: a.parents,
	}
	copy(na.entries, a.entries)
	for _, i := range a2iIDs {
		old := na.entries[i]
		na.entries[i] = &mining.Fragment{
			Graph:   old.Graph,
			Code:    old.Code,
			Support: old.Support + 1,
			FSGIds:  appendSorted(old.FSGIds, gid),
		}
	}
	return &Set{A2F: nf, A2I: na, Alpha: s.Alpha, Beta: s.Beta, NumGraphs: s.NumGraphs + 1}
}

// ApplyDelete returns a copy-on-write descendant with graph id gid spliced
// out of every list containing it, plus the a2f and a2i entry ids it was
// removed from (ascending) for the store's support bookkeeping. Removing one
// id from both sides of the delta encoding preserves it exactly:
// (fsg \ {g}) = (del \ {g}) ∪ ⋃(child_fsg \ {g}).
func (s *Set) ApplyDelete(gid int) (_ *Set, a2fIDs, a2iIDs []int) {
	s.Seal()
	f := s.A2F
	nf := &A2F{
		beta:      f.beta,
		entries:   make([]*a2fEntry, len(f.entries)),
		byCode:    f.byCode,
		clusters:  f.clusters,
		numGraphs: f.numGraphs - 1,
	}
	copy(nf.entries, f.entries)
	for i, old := range f.entries {
		fsg, ok := spliceOut(old.fsgIds, gid)
		if !ok {
			continue
		}
		e := *old
		e.fsgIds = fsg
		if del, ok := spliceOut(old.DelIds, gid); ok {
			e.DelIds = del
		}
		nf.entries[i] = &e
		a2fIDs = append(a2fIDs, i)
	}

	a := s.A2I
	na := &A2I{
		entries: make([]*mining.Fragment, len(a.entries)),
		byCode:  a.byCode,
		parents: a.parents,
	}
	copy(na.entries, a.entries)
	for i, old := range a.entries {
		fsg, ok := spliceOut(old.FSGIds, gid)
		if !ok {
			continue
		}
		na.entries[i] = &mining.Fragment{
			Graph:   old.Graph,
			Code:    old.Code,
			Support: old.Support - 1,
			FSGIds:  fsg,
		}
		a2iIDs = append(a2iIDs, i)
	}
	return &Set{A2F: nf, A2I: na, Alpha: s.Alpha, Beta: s.Beta, NumGraphs: s.NumGraphs - 1}, a2fIDs, a2iIDs
}

// RebuildLists reconstructs every FSG list from scratch over the frozen
// vocabulary: a direct subgraph-isomorphism scan of each entry against the
// given live graphs, with delta lists rederived from the full lists by the
// same formula Build uses. It deliberately shares nothing with the
// incremental path beyond the isomorphism test itself, making it the
// independent oracle FuzzIncrementalIndex compares surgery against.
func (s *Set) RebuildLists(ids []int, graphOf func(id int) *graph.Graph) *Set {
	s.Seal()
	f := s.A2F
	nf := &A2F{
		beta:      f.beta,
		entries:   make([]*a2fEntry, len(f.entries)),
		byCode:    f.byCode,
		clusters:  f.clusters,
		numGraphs: len(ids),
	}
	full := make([][]int, len(f.entries))
	for i, old := range f.entries {
		var fsg []int
		for _, id := range ids {
			if g := graphOf(id); g != nil && graph.SubgraphIsomorphic(old.Graph, g) {
				fsg = append(fsg, id)
			}
		}
		full[i] = fsg
	}
	for i, old := range f.entries {
		covered := map[int]bool{}
		for _, c := range old.Children {
			for _, id := range full[c] {
				covered[id] = true
			}
		}
		var del []int
		for _, id := range full[i] {
			if !covered[id] {
				del = append(del, id)
			}
		}
		e := *old
		e.DelIds = del
		e.fsgIds = full[i]
		nf.entries[i] = &e
	}

	a := s.A2I
	na := &A2I{
		entries: make([]*mining.Fragment, len(a.entries)),
		byCode:  a.byCode,
		parents: a.parents,
	}
	for i, old := range a.entries {
		var fsg []int
		for _, id := range ids {
			if g := graphOf(id); g != nil && graph.SubgraphIsomorphic(old.Graph, g) {
				fsg = append(fsg, id)
			}
		}
		na.entries[i] = &mining.Fragment{
			Graph:   old.Graph,
			Code:    old.Code,
			Support: len(fsg),
			FSGIds:  fsg,
		}
	}
	return &Set{A2F: nf, A2I: na, Alpha: s.Alpha, Beta: s.Beta, NumGraphs: len(ids)}
}

// DumpLists renders every identifier list of the set — the A²F delta lists,
// the reconstructed full lists, and the A²I id-lists — in a deterministic
// byte-comparable form. Two sets over the same vocabulary dump identically
// iff every list (and A²I support) is identical.
func (s *Set) DumpLists() string {
	s.Seal()
	var b strings.Builder
	s.A2F.mu.Lock()
	for _, e := range s.A2F.entries {
		fmt.Fprintf(&b, "F %d %q del=%v fsg=%v\n", e.ID, e.Code, e.DelIds, e.fsgIds)
	}
	s.A2F.mu.Unlock()
	for i, d := range s.A2I.entries {
		fmt.Fprintf(&b, "I %d %q sup=%d fsg=%v\n", i, d.Code, d.Support, d.FSGIds)
	}
	return b.String()
}

// appendSorted returns a fresh copy of ids with v appended; v must exceed
// every element (inserted graph ids strictly increase).
func appendSorted(ids []int, v int) []int {
	out := make([]int, 0, len(ids)+1)
	out = append(out, ids...)
	return append(out, v)
}

// spliceOut returns a fresh copy of the sorted list with v removed, reporting
// whether v was present; absent values return the original slice untouched.
func spliceOut(ids []int, v int) ([]int, bool) {
	i := sort.SearchInts(ids, v)
	if i >= len(ids) || ids[i] != v {
		return ids, false
	}
	out := make([]int, 0, len(ids)-1)
	out = append(out, ids[:i]...)
	return append(out, ids[i+1:]...), true
}
