package dataset

import (
	"testing"

	"prague/internal/graph"
)

func TestMoleculesValidation(t *testing.T) {
	if _, err := Molecules(MoleculeOptions{NumGraphs: 0}); err == nil {
		t.Error("zero graphs accepted")
	}
	if _, err := Molecules(MoleculeOptions{NumGraphs: 1, MeanNodes: 1}); err == nil {
		t.Error("mean of 1 accepted")
	}
	if _, err := Molecules(MoleculeOptions{NumGraphs: 1, MeanNodes: 30, MaxNodes: 10}); err == nil {
		t.Error("max < mean accepted")
	}
}

func TestMoleculesStatistics(t *testing.T) {
	db, err := Molecules(MoleculeOptions{NumGraphs: 800, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	s := Stats(db)
	if s.AvgNodes < 18 || s.AvgNodes > 32 {
		t.Errorf("avg nodes %.1f outside AIDS-like range [18,32]", s.AvgNodes)
	}
	if s.AvgEdges < s.AvgNodes-1 || s.AvgEdges > s.AvgNodes+6 {
		t.Errorf("avg edges %.1f inconsistent with avg nodes %.1f", s.AvgEdges, s.AvgNodes)
	}
	if s.MaxNodes > 222 {
		t.Errorf("max nodes %d exceeds AIDS cap", s.MaxNodes)
	}
	// Carbon should dominate.
	counts := map[string]int{}
	total := 0
	for _, g := range db {
		for _, l := range g.Labels() {
			counts[l]++
			total++
		}
	}
	if frac := float64(counts["C"]) / float64(total); frac < 0.6 || frac > 0.85 {
		t.Errorf("carbon fraction %.2f outside [0.6,0.85]", frac)
	}
	if counts["Hg"] == 0 {
		t.Error("no mercury atoms; rare-label tail missing (Q3 needs Hg)")
	}
}

func TestMoleculesAreValid(t *testing.T) {
	db, err := Molecules(MoleculeOptions{NumGraphs: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range db {
		if g.ID != i {
			t.Fatalf("graph %d has id %d", i, g.ID)
		}
		if !g.Connected() {
			t.Fatalf("graph %d disconnected", i)
		}
		for v := 0; v < g.NumNodes(); v++ {
			if g.Degree(v) > 4+1 { // tree fallback can exceed the cap by one
				t.Fatalf("graph %d node %d degree %d", i, v, g.Degree(v))
			}
		}
	}
}

func TestMoleculesDeterministic(t *testing.T) {
	a, _ := Molecules(MoleculeOptions{NumGraphs: 50, Seed: 9})
	b, _ := Molecules(MoleculeOptions{NumGraphs: 50, Seed: 9})
	for i := range a {
		if graph.CanonicalCode(a[i]) != graph.CanonicalCode(b[i]) {
			t.Fatalf("graph %d differs across runs with the same seed", i)
		}
	}
	c, _ := Molecules(MoleculeOptions{NumGraphs: 50, Seed: 10})
	same := 0
	for i := range a {
		if graph.CanonicalCode(a[i]) == graph.CanonicalCode(c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical databases")
	}
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := Synthetic(SyntheticOptions{NumGraphs: 0}); err == nil {
		t.Error("zero graphs accepted")
	}
	if _, err := Synthetic(SyntheticOptions{NumGraphs: 1, Density: 2}); err == nil {
		t.Error("density > 1 accepted")
	}
}

func TestSyntheticStatistics(t *testing.T) {
	db, err := Synthetic(SyntheticOptions{NumGraphs: 500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	s := Stats(db)
	if s.AvgEdges < 24 || s.AvgEdges > 36 {
		t.Errorf("avg edges %.1f outside [24,36] (target 30)", s.AvgEdges)
	}
	if s.Density < 0.07 || s.Density > 0.14 {
		t.Errorf("density %.3f outside [0.07,0.14] (target 0.1)", s.Density)
	}
	if s.NumLabels != 20 {
		t.Errorf("label vocabulary %d, want 20", s.NumLabels)
	}
	for i, g := range db {
		if !g.Connected() {
			t.Fatalf("graph %d disconnected", i)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, _ := Synthetic(SyntheticOptions{NumGraphs: 30, Seed: 3})
	b, _ := Synthetic(SyntheticOptions{NumGraphs: 30, Seed: 3})
	for i := range a {
		if graph.CanonicalCode(a[i]) != graph.CanonicalCode(b[i]) {
			t.Fatalf("graph %d differs across runs", i)
		}
	}
}

func TestStatsEmpty(t *testing.T) {
	s := Stats(nil)
	if s.NumGraphs != 0 || s.AvgNodes != 0 {
		t.Error("empty stats not zeroed")
	}
}
