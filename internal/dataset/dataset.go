// Package dataset generates the two evaluation datasets of the paper's §VIII
// as seeded, deterministic synthetic equivalents (see DESIGN.md for the
// substitution rationale):
//
//   - an AIDS-Antiviral-like molecule collection — many small node-labeled
//     graphs, average ≈ 25 vertices / 27 edges with a heavy size tail, a
//     carbon-dominated label distribution, tree-like skeletons plus a few
//     ring closures and a degree cap of 4;
//
//   - a GraphGen-like collection (the FG-Index generator) — average 30 edges
//     per graph at density 0.1 over a configurable label vocabulary.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"prague/internal/graph"
)

// Element frequencies loosely follow organic chemistry datasets: carbon
// dominates, a few heteroatoms, and a tail of rare elements (the paper's Q3
// uses Hg, so mercury exists in the vocabulary).
var atomDist = []struct {
	label  string
	weight float64
}{
	{"C", 0.720},
	{"O", 0.100},
	{"N", 0.090},
	{"S", 0.025},
	{"Cl", 0.020},
	{"P", 0.012},
	{"F", 0.012},
	{"Br", 0.008},
	{"I", 0.006},
	{"Hg", 0.004},
	{"Se", 0.003},
}

// MoleculeOptions configures the AIDS-like generator.
type MoleculeOptions struct {
	NumGraphs int
	Seed      int64
	// MeanNodes is the average node count (default 25, like AIDS).
	MeanNodes int
	// MaxNodes caps the heavy tail (default 222, the AIDS maximum).
	MaxNodes int
	// BondLabels, when true, labels edges with bond orders ("1", "2",
	// occasionally "3"), exercising the engine's edge-label support. The
	// default (false) matches the paper's node-labeled presentation.
	BondLabels bool
}

// Molecules generates an AIDS-like database of molecule graphs.
func Molecules(opt MoleculeOptions) ([]*graph.Graph, error) {
	if opt.NumGraphs <= 0 {
		return nil, fmt.Errorf("dataset: NumGraphs must be positive")
	}
	mean := opt.MeanNodes
	if mean == 0 {
		mean = 25
	}
	maxNodes := opt.MaxNodes
	if maxNodes == 0 {
		maxNodes = 222
	}
	if mean < 2 || maxNodes < mean {
		return nil, fmt.Errorf("dataset: invalid size parameters mean=%d max=%d", mean, maxNodes)
	}
	r := rand.New(rand.NewSource(opt.Seed))
	db := make([]*graph.Graph, 0, opt.NumGraphs)
	for i := 0; i < opt.NumGraphs; i++ {
		db = append(db, randomMolecule(r, i, mean, maxNodes, opt.BondLabels))
	}
	return db, nil
}

// randomMolecule builds one molecule: lognormal-ish size, random tree with a
// degree cap, then a few ring-closing edges. With bonds, edges carry bond
// orders (mostly single, some double, rare triple).
func randomMolecule(r *rand.Rand, id, mean, maxNodes int, bonds bool) *graph.Graph {
	addEdge := func(g *graph.Graph, u, v int) {
		label := ""
		if bonds {
			switch x := r.Float64(); {
			case x < 0.80:
				label = "1"
			case x < 0.97:
				label = "2"
			default:
				label = "3"
			}
		}
		if err := g.AddLabeledEdge(u, v, label); err != nil {
			panic(err)
		}
	}
	// Lognormal size centered near mean with a heavy right tail.
	mu := math.Log(float64(mean)) - 0.08
	n := int(math.Exp(r.NormFloat64()*0.4 + mu))
	if n < 2 {
		n = 2
	}
	if n > maxNodes {
		n = maxNodes
	}

	g := graph.New(id)
	for v := 0; v < n; v++ {
		g.AddNode(sampleAtom(r))
	}
	const maxDegree = 4
	// Random tree: attach each new node to a uniformly chosen earlier node
	// with spare valence (chains and branches, like molecule skeletons).
	for v := 1; v < n; v++ {
		for tries := 0; ; tries++ {
			u := r.Intn(v)
			if g.Degree(u) < maxDegree || tries > 4*v {
				addEdge(g, u, v)
				break
			}
		}
	}
	// Ring closures: roughly one ring per ~8 nodes (AIDS averages 25 nodes
	// / 27 edges ⇒ ~3 extra edges).
	rings := n / 8
	if rings < 1 && r.Float64() < 0.5 {
		rings = 1
	}
	for k := 0; k < rings; k++ {
		for tries := 0; tries < 20; tries++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) && g.Degree(u) < maxDegree && g.Degree(v) < maxDegree {
				addEdge(g, u, v)
				break
			}
		}
	}
	return g
}

func sampleAtom(r *rand.Rand) string {
	x := r.Float64()
	for _, a := range atomDist {
		if x < a.weight {
			return a.label
		}
		x -= a.weight
	}
	return "C"
}

// SyntheticOptions configures the GraphGen-like generator.
type SyntheticOptions struct {
	NumGraphs int
	Seed      int64
	// AvgEdges is the average edge count per graph (default 30, matching
	// the paper's synthetic datasets).
	AvgEdges int
	// Density is 2|E| / (|V|·(|V|−1)) (default 0.1).
	Density float64
	// NumLabels is the node label vocabulary size (default 20).
	NumLabels int
}

// Synthetic generates a GraphGen-like database.
func Synthetic(opt SyntheticOptions) ([]*graph.Graph, error) {
	if opt.NumGraphs <= 0 {
		return nil, fmt.Errorf("dataset: NumGraphs must be positive")
	}
	avgEdges := opt.AvgEdges
	if avgEdges == 0 {
		avgEdges = 30
	}
	density := opt.Density
	if density == 0 {
		density = 0.1
	}
	if density < 0 || density > 1 || avgEdges < 1 {
		return nil, fmt.Errorf("dataset: invalid parameters density=%v avgEdges=%d", density, avgEdges)
	}
	numLabels := opt.NumLabels
	if numLabels == 0 {
		numLabels = 20
	}
	labels := make([]string, numLabels)
	for i := range labels {
		labels[i] = fmt.Sprintf("L%d", i)
	}

	r := rand.New(rand.NewSource(opt.Seed))
	db := make([]*graph.Graph, 0, opt.NumGraphs)
	for i := 0; i < opt.NumGraphs; i++ {
		// Jitter edge count ±30% around the average.
		e := int(float64(avgEdges) * (0.7 + 0.6*r.Float64()))
		if e < 1 {
			e = 1
		}
		// Solve 2e / (v(v-1)) = density for v.
		v := int(math.Ceil((1 + math.Sqrt(1+8*float64(e)/density)) / 2))
		if v < 2 {
			v = 2
		}
		if e > v*(v-1)/2 {
			e = v * (v - 1) / 2
		}
		if e < v-1 {
			// Keep the graph connected: at least a spanning tree.
			e = v - 1
		}
		g := graph.New(i)
		for k := 0; k < v; k++ {
			g.AddNode(labels[r.Intn(numLabels)])
		}
		for k := 1; k < v; k++ {
			g.MustAddEdge(k, r.Intn(k))
		}
		for g.NumEdges() < e {
			a, b := r.Intn(v), r.Intn(v)
			if a != b && !g.HasEdge(a, b) {
				g.MustAddEdge(a, b)
			}
		}
		db = append(db, g)
	}
	return db, nil
}

// Stats summarizes a database, mirroring the dataset descriptions in §VIII-A.
type DatasetStats struct {
	NumGraphs          int
	AvgNodes, AvgEdges float64
	MaxNodes, MaxEdges int
	NumLabels          int
	Density            float64
}

// Stats computes summary statistics for a database.
func Stats(db []*graph.Graph) DatasetStats {
	var s DatasetStats
	s.NumGraphs = len(db)
	labels := map[string]bool{}
	var totalDensity float64
	for _, g := range db {
		s.AvgNodes += float64(g.NumNodes())
		s.AvgEdges += float64(g.NumEdges())
		if g.NumNodes() > s.MaxNodes {
			s.MaxNodes = g.NumNodes()
		}
		if g.NumEdges() > s.MaxEdges {
			s.MaxEdges = g.NumEdges()
		}
		for _, l := range g.Labels() {
			labels[l] = true
		}
		if n := g.NumNodes(); n > 1 {
			totalDensity += 2 * float64(g.NumEdges()) / (float64(n) * float64(n-1))
		}
	}
	if len(db) > 0 {
		s.AvgNodes /= float64(len(db))
		s.AvgEdges /= float64(len(db))
		s.Density = totalDensity / float64(len(db))
	}
	s.NumLabels = len(labels)
	return s
}
