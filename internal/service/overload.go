// Overload protection: bounded global and per-session in-flight action
// queues with typed shedding, plus the exponential-backoff retry helper
// front-ends use against transient rejections. Shedding is deliberately
// cheap and non-blocking — a rejected action never holds a lock or a pool
// slot — so the service's answer latency under 2x load stays governed by
// the admitted work, not by the queue of doomed work.

package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"prague/internal/faultinject"
	"prague/internal/metrics"
	"prague/internal/slo"
)

// ErrOverloaded is the sentinel all admission rejections wrap; callers test
// with errors.Is and back off. The concrete error is an *OverloadError
// carrying the retry-after hint.
var ErrOverloaded = errors.New("service overloaded")

// OverloadError is the typed admission rejection: which bound was hit and a
// deterministic hint for how long to back off before retrying (roughly one
// action-drain time). It unwraps to ErrOverloaded.
type OverloadError struct {
	// Scope is "global" (service-wide in-flight bound) or "session"
	// (per-session queue bound).
	Scope string
	// RetryAfter is the suggested backoff before the next attempt.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("service overloaded (%s bound, retry after %v)", e.Scope, e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// retryAfterHint estimates one action-drain time: the configured action
// deadline when there is one, else a small constant.
func (s *Service) retryAfterHint() time.Duration {
	if d := s.opt.ActionDeadline; d > 0 {
		return d
	}
	return 5 * time.Millisecond
}

// shed records one rejected action.
func (s *Service) shed(scope string) {
	s.reg.Counter(metrics.CounterOverloadShed).Inc()
	s.col.AddRate(slo.RateShed, 1)
	_ = scope
}

// admit reserves per-session and global in-flight capacity for one
// evaluating action, returning the paired release. Both checks are
// non-blocking: when a bound is full the action is shed immediately with an
// *OverloadError instead of queueing behind work it would only slow down.
func (ss *Session) admit() (release func(), err error) {
	s := ss.svc
	if q := s.opt.SessionQueue; q > 0 {
		if int(ss.pending.Add(1)) > q {
			ss.pending.Add(-1)
			s.shed("session")
			return nil, fmt.Errorf("service: session %s: %w",
				ss.id, &OverloadError{Scope: "session", RetryAfter: s.retryAfterHint()})
		}
	} else {
		ss.pending.Add(1)
	}
	releaseGlobal, err := s.admitGlobal()
	if err != nil {
		ss.pending.Add(-1)
		return nil, err
	}
	return func() {
		releaseGlobal()
		ss.pending.Add(-1)
	}, nil
}

// Retry invokes fn until it succeeds or attempts are exhausted, sleeping an
// exponentially doubling backoff (starting at base) between attempts and
// honoring ctx. When the failure is an *OverloadError whose RetryAfter
// exceeds the computed backoff, the hint wins. Only transient failures are
// retried — ErrOverloaded and injected faults (faultinject.ErrInjected);
// any other error returns immediately. The terminal error is returned
// unwrapped-enough for errors.Is to keep working.
func Retry(ctx context.Context, attempts int, base time.Duration, fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	if base <= 0 {
		base = time.Millisecond
	}
	var err error
	backoff := base
	for i := 0; i < attempts; i++ {
		if i > 0 {
			wait := backoff
			var oe *OverloadError
			if errors.As(err, &oe) && oe.RetryAfter > wait {
				wait = oe.RetryAfter
			}
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("service: retry: %w", ctx.Err())
			}
			backoff *= 2
		}
		if err = fn(); err == nil {
			return nil
		}
		if !errors.Is(err, ErrOverloaded) && !errors.Is(err, faultinject.ErrInjected) {
			return err
		}
	}
	return err
}
