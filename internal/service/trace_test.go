package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"prague/internal/metrics"
	"prague/internal/trace"
)

// tracedSession formulates a short query in a fresh session and runs it.
func tracedSession(t *testing.T, svc *Service) *Session {
	t.Helper()
	ctx := context.Background()
	ss, err := svc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ss.AddNode("C")
	b, _ := ss.AddNode("C")
	c, _ := ss.AddNode("N")
	for _, e := range [][2]int{{a, b}, {b, c}} {
		out, err := ss.AddEdge(ctx, e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		if out.NeedsChoice {
			if _, err := ss.ChooseSimilarity(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := ss.Run(ctx); err != nil {
		t.Fatal(err)
	}
	return ss
}

func TestServiceTraceReport(t *testing.T) {
	db, idx := smallFixture(t)
	reg := metrics.NewRegistry()
	svc, err := New(db, idx, WithSessionTTL(0), WithMetrics(reg), WithTracing(true))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Tracer() == nil || !svc.Tracer().Enabled() {
		t.Fatal("WithTracing(true) did not enable the tracer")
	}

	ss, err := svc.Create(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.TraceReport(); !errors.Is(err, ErrNoTrace) {
		t.Fatalf("TraceReport before Run = %v, want ErrNoTrace", err)
	}
	if _, err := ss.LastRunTrace(); !errors.Is(err, ErrNoTrace) {
		t.Fatalf("LastRunTrace before Run = %v, want ErrNoTrace", err)
	}

	ss = tracedSession(t, svc)
	root, err := ss.LastRunTrace()
	if err != nil {
		t.Fatal(err)
	}
	if root.Kind != "run" {
		t.Fatalf("last-run root kind = %q, want run", root.Kind)
	}
	if root.Attrs["session"] != ss.ID() {
		t.Fatalf("root attrs = %v, want session=%s", root.Attrs, ss.ID())
	}
	rep, err := ss.TraceReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != "run" || rep.Spans < 1 || rep.Duration <= 0 {
		t.Fatalf("report = %+v", rep)
	}

	// Formulation steps feed phase histograms even before Run.
	snap := reg.Snapshot()
	for _, name := range []string{"phase_add_edge", "phase_run", "phase_spig_build"} {
		if h, ok := snap.Histograms[name]; !ok || h.Count == 0 {
			t.Fatalf("histogram %s missing or empty (have %v)", name, snap.Histograms)
		}
	}

	// Every completed action lands in the (threshold-0) slow journal.
	if len(svc.SlowSpans()) == 0 {
		t.Fatal("slow journal empty after a traced session")
	}
}

func TestServiceTracingDisabled(t *testing.T) {
	db, idx := smallFixture(t)
	svc, err := New(db, idx, WithSessionTTL(0))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Tracer() != nil {
		t.Fatal("tracing off must not build a tracer")
	}
	if got := svc.SlowSpans(); got != nil {
		t.Fatalf("SlowSpans without tracer = %v, want nil", got)
	}
	ss := tracedSession(t, svc)
	if _, err := ss.TraceReport(); !errors.Is(err, ErrNoTrace) {
		t.Fatalf("TraceReport without tracing = %v, want ErrNoTrace", err)
	}
}

func TestServiceSlowThresholdAndJournalSize(t *testing.T) {
	db, idx := smallFixture(t)
	svc, err := New(db, idx, WithSessionTTL(0),
		WithSlowThreshold(time.Hour), WithSlowJournalSize(4))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Tracer() == nil {
		t.Fatal("WithSlowThreshold must imply tracing")
	}
	tracedSession(t, svc)
	if got := svc.SlowSpans(); len(got) != 0 {
		t.Fatalf("hour-threshold journal has %d entries", len(got))
	}
	svc.Tracer().SetSlowThreshold(0)
	tracedSession(t, svc)
	if got := svc.SlowSpans(); len(got) == 0 {
		t.Fatal("threshold-0 journal still empty")
	}
}

func TestServiceOpsServer(t *testing.T) {
	db, idx := smallFixture(t)
	svc, err := New(db, idx, WithSessionTTL(0),
		WithTracing(true), WithOpsServer("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	addr := svc.OpsAddr()
	if addr == "" {
		t.Fatal("WithOpsServer did not report a bound address")
	}
	tracedSession(t, svc)

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get("http://" + addr + "/trace/slow")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var spans []*trace.SpanData
	if err := json.Unmarshal(body, &spans); err != nil {
		t.Fatalf("/trace/slow: %v\n%s", err, body)
	}
	if len(spans) == 0 {
		t.Fatal("/trace/slow empty after a traced session")
	}

	svc.Close()
	client := http.Client{Timeout: 500 * time.Millisecond}
	if _, err := client.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("ops server still serving after service Close")
	}
}

func TestTracedFleetRace(t *testing.T) {
	db, idx := smallFixture(t)
	svc, err := New(db, idx, WithSessionTTL(0), WithTracing(true))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	errc := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(seed int64) {
			errc <- formulateAndRun(context.Background(), svc, rand.New(rand.NewSource(seed)))
		}(int64(i))
	}
	for i := 0; i < 8; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if len(svc.SlowSpans()) == 0 {
		t.Fatal("no spans journaled by the traced fleet")
	}
}
