package service

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"prague/internal/core"
)

// TestRunRacingCloseReturnsTypedError hammers live sessions with evaluating
// and read actions while the service shuts down mid-flight. The contract
// under -race: no data race, no panic, and every failure is one of the typed
// errors — an action that loses the race against Close gets ErrServiceClosed
// (not ErrSessionNotFound, and never a torn read of freed session state).
func TestRunRacingCloseReturnsTypedError(t *testing.T) {
	db, idx := smallFixture(t)
	for round := 0; round < 8; round++ {
		s, err := New(db, idx)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()

		const sessions = 4
		var ss [sessions]*Session
		for i := range ss {
			ss[i], err = s.Create(ctx)
			if err != nil {
				t.Fatal(err)
			}
			u, _ := ss[i].AddNode("C")
			v, _ := ss[i].AddNode("N")
			if _, err := ss[i].AddEdge(ctx, u, v); err != nil {
				t.Fatal(err)
			}
		}

		allowed := func(err error) bool {
			return err == nil ||
				errors.Is(err, ErrServiceClosed) ||
				errors.Is(err, ErrOverloaded) ||
				errors.Is(err, core.ErrAwaitingChoice) ||
				errors.Is(err, core.ErrEmptyQuery)
		}

		var wg sync.WaitGroup
		errs := make(chan error, 64)
		start := make(chan struct{})
		for w := 0; w < 8; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(round*100 + w)))
				<-start
				for i := 0; i < 50; i++ {
					sess := ss[r.Intn(sessions)]
					var err error
					switch r.Intn(4) {
					case 0:
						_, err = sess.Run(ctx)
					case 1:
						u, aerr := sess.AddNode("C")
						err = aerr
						if err == nil {
							_, err = sess.AddEdge(ctx, u, 0)
						}
					case 2:
						_, err = sess.Describe()
					default:
						_, err = sess.QueryGraph()
					}
					if !allowed(err) {
						select {
						case errs <- err:
						default:
						}
						return
					}
				}
			}()
		}
		close(start)
		s.Close() // races the workers on purpose
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("round %d: action racing Close returned untyped error: %v", round, err)
		}

		// After Close has returned, the error is deterministic.
		if _, err := ss[0].Run(ctx); !errors.Is(err, ErrServiceClosed) {
			t.Fatalf("post-Close Run: %v, want ErrServiceClosed", err)
		}
		if _, err := s.Create(ctx); !errors.Is(err, ErrServiceClosed) {
			t.Fatalf("post-Close Create: %v, want ErrServiceClosed", err)
		}
	}
}
