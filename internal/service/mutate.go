// Online mutation: the service-level entry points for growing and shrinking
// the data graph database while sessions are formulating. Mutations go
// through the same global admission bound as evaluating actions (a mutation
// storm must not starve queries), are measured, and publish a new store
// epoch that in-flight actions are isolated from by snapshot pinning.

package service

import (
	"context"
	"fmt"

	"prague/internal/graph"
	"prague/internal/metrics"
	"prague/internal/slo"
)

// admitGlobal reserves service-wide in-flight capacity for one action (an
// evaluation or a mutation), returning the paired release. Non-blocking:
// when the bound is full the action is shed with an *OverloadError. The
// bound is an atomic limit rather than a channel capacity so the adaptive
// runtime can move it live; two concurrent admits racing the last slot may
// transiently both shed (under-admission), never over-admit.
func (s *Service) admitGlobal() (release func(), err error) {
	n := s.inflightN.Add(1)
	if limit := s.inflightLimit.Load(); limit > 0 && n > limit {
		s.inflightN.Add(-1)
		s.shed("global")
		return nil, fmt.Errorf("service: %w",
			&OverloadError{Scope: "global", RetryAfter: s.retryAfterHint()})
	}
	s.col.AddRate(slo.RateAdmitted, 1)
	return func() { s.inflightN.Add(-1) }, nil
}

// InsertGraph adds a data graph to the store online: the graph is classified
// against the frozen fragment vocabulary, the owning shard's index lists are
// extended incrementally (no rebuild), and a new epoch is published. Sessions
// with actions in flight keep their pinned epoch; their next action observes
// the insert. Returns the assigned graph id. The store takes ownership of g
// and renumbers g.ID.
func (s *Service) InsertGraph(ctx context.Context, g *graph.Graph) (int, error) {
	if err := ctx.Err(); err != nil {
		return -1, fmt.Errorf("service: insert: %w", err)
	}
	release, err := s.admitGlobal()
	if err != nil {
		return -1, err
	}
	defer release()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return -1, fmt.Errorf("service: insert: %w", ErrServiceClosed)
	}
	t0 := s.clk.Now()
	id, err := s.st.InsertGraph(g)
	if err != nil {
		return -1, fmt.Errorf("service: insert: %w", err)
	}
	s.reg.Histogram(metrics.HistMutation).Observe(s.clk.Now().Sub(t0))
	s.reg.Counter(metrics.CounterGraphsInserted).Inc()
	s.reg.Counter(metrics.CounterStoreEpoch).Set(int64(s.st.Epoch()))
	return id, nil
}

// DeleteGraph removes a data graph online: the slot is tombstoned (ids are never
// reused), the id is spliced out of the owning shard's index lists, and a
// new epoch is published. Deleting the last live graph is refused — every
// layer assumes a non-empty database.
func (s *Service) DeleteGraph(ctx context.Context, graphID int) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("service: delete graph: %w", err)
	}
	release, err := s.admitGlobal()
	if err != nil {
		return err
	}
	defer release()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return fmt.Errorf("service: delete graph: %w", ErrServiceClosed)
	}
	t0 := s.clk.Now()
	if err := s.st.DeleteGraph(graphID); err != nil {
		return fmt.Errorf("service: delete graph: %w", err)
	}
	s.reg.Histogram(metrics.HistMutation).Observe(s.clk.Now().Sub(t0))
	s.reg.Counter(metrics.CounterGraphsDeleted).Inc()
	s.reg.Counter(metrics.CounterStoreEpoch).Set(int64(s.st.Epoch()))
	return nil
}

// Epoch returns the store's current epoch: 0 at construction, +1 per
// mutation. Sessions report the epoch each Run was pinned to in
// core.RunOutcome.Epoch.
func (s *Service) Epoch() uint64 { return s.st.Epoch() }
