package service

import (
	"context"
	"errors"
	"testing"

	"prague/internal/graph"
	"prague/internal/metrics"
	"prague/internal/store"
)

// TestServiceMutation exercises the service-level mutation surface: epoch
// progression, metrics, validation, and closed-service refusal. The
// concurrency side (mutators racing sessions) lives in internal/chaostest.
func TestServiceMutation(t *testing.T) {
	db, idx := smallFixture(t)
	st, err := store.NewMem(db, idx)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	svc, err := NewFromStore(st, WithSigma(2), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if svc.Epoch() != 0 {
		t.Fatalf("fresh service at epoch %d", svc.Epoch())
	}
	g := graph.New(0)
	a := g.AddNode("C")
	b := g.AddNode("N")
	g.MustAddEdge(a, b)
	id, err := svc.InsertGraph(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if id != len(db) {
		t.Errorf("inserted graph got id %d, want next slot %d", id, len(db))
	}
	if svc.Epoch() != 1 {
		t.Errorf("epoch after insert: %d", svc.Epoch())
	}
	if _, err := svc.InsertGraph(ctx, nil); !errors.Is(err, store.ErrBadGraph) {
		t.Errorf("nil insert: %v", err)
	}
	if err := svc.DeleteGraph(ctx, id); err != nil {
		t.Fatal(err)
	}
	if err := svc.DeleteGraph(ctx, id); !errors.Is(err, store.ErrNoSuchGraph) {
		t.Errorf("double delete: %v", err)
	}
	if svc.Epoch() != 2 {
		t.Errorf("epoch after delete: %d", svc.Epoch())
	}

	snap := svc.Snapshot()
	if snap.Counters[metrics.CounterGraphsInserted] != 1 ||
		snap.Counters[metrics.CounterGraphsDeleted] != 1 {
		t.Errorf("mutation counters: %+v", snap.Counters)
	}
	if snap.Counters[metrics.CounterStoreEpoch] != 2 {
		t.Errorf("store_epoch gauge: %d", snap.Counters[metrics.CounterStoreEpoch])
	}
	if snap.Histograms[metrics.HistMutation].Count != 2 {
		t.Errorf("mutation histogram count: %d", snap.Histograms[metrics.HistMutation].Count)
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := svc.InsertGraph(canceled, g.Clone()); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled insert: %v", err)
	}
	if err := svc.DeleteGraph(canceled, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled delete: %v", err)
	}

	svc.Close()
	if _, err := svc.InsertGraph(ctx, g.Clone()); !errors.Is(err, ErrServiceClosed) {
		t.Errorf("insert after close: %v", err)
	}
	if err := svc.DeleteGraph(ctx, 0); !errors.Is(err, ErrServiceClosed) {
		t.Errorf("delete after close: %v", err)
	}
}

// TestServiceMutationSharesAdmission verifies mutations go through the same
// global in-flight bound as evaluations: with the bound saturated, a
// mutation is shed with a typed *OverloadError instead of queueing.
func TestServiceMutationSharesAdmission(t *testing.T) {
	db, idx := smallFixture(t)
	st, err := store.NewMem(db, idx)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewFromStore(st, WithSigma(2), WithMaxInFlight(1))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Saturate the bound directly, as an admitted action would.
	svc.inflightN.Add(1)
	defer svc.inflightN.Add(-1)

	g := graph.New(0)
	g.AddNode("C")
	var oe *OverloadError
	if _, err := svc.InsertGraph(context.Background(), g); !errors.As(err, &oe) {
		t.Fatalf("saturated insert: %v", err)
	}
	if err := svc.DeleteGraph(context.Background(), 0); !errors.As(err, &oe) {
		t.Fatalf("saturated delete: %v", err)
	}
}
