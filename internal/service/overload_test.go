package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"prague/internal/metrics"
)

// TestAdmissionBounds drives the two admission bounds deterministically by
// holding reservations directly (white-box: admit is what every evaluating
// action calls first).
func TestAdmissionBounds(t *testing.T) {
	db, idx := smallFixture(t)
	reg := metrics.NewRegistry()
	s, err := New(db, idx, WithMetrics(reg), WithMaxInFlight(2), WithSessionQueue(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	a, _ := s.Create(ctx)
	b, _ := s.Create(ctx)

	// Per-session bound: a second action on the same session sheds.
	relA, err := a.admit()
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.admit()
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("session bound not enforced: %v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Scope != "session" || oe.RetryAfter <= 0 {
		t.Fatalf("want session-scope OverloadError with hint, got %#v", oe)
	}

	// Global bound: sessions a and b fill the two slots; b's next sheds
	// globally (its own session queue is free again only if pending < 1, so
	// use a third session).
	relB, err := b.admit()
	if err != nil {
		t.Fatal(err)
	}
	c, _ := s.Create(ctx)
	_, err = c.admit()
	if !errors.As(err, &oe) || oe.Scope != "global" {
		t.Fatalf("global bound not enforced: %v", err)
	}
	if got := reg.Snapshot().Counters[metrics.CounterOverloadShed]; got != 2 {
		t.Fatalf("overload_shed_total = %d, want 2", got)
	}

	// Released capacity admits again, and real actions run.
	relA()
	relB()
	if _, err := c.AddNode("C"); err != nil {
		t.Fatal(err)
	}
	u, _ := c.AddNode("C")
	v, _ := c.AddNode("N")
	if _, err := c.AddEdge(ctx, u, v); err != nil {
		t.Fatalf("action after release: %v", err)
	}
}

// TestRetryBacksOffOnOverload checks the retry helper's contract: transient
// failures retried with growing backoff (respecting RetryAfter hints),
// permanent errors returned immediately, cancellation honored mid-backoff.
func TestRetryBacksOffOnOverload(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 5, time.Microsecond, func() error {
		calls++
		if calls < 3 {
			return &OverloadError{Scope: "global", RetryAfter: time.Microsecond}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("retry: err=%v calls=%d", err, calls)
	}

	permanent := errors.New("permanent")
	calls = 0
	err = Retry(context.Background(), 5, time.Microsecond, func() error {
		calls++
		return permanent
	})
	if !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("permanent error retried: err=%v calls=%d", err, calls)
	}

	calls = 0
	err = Retry(context.Background(), 2, time.Microsecond, func() error {
		calls++
		return fmt.Errorf("wrapped: %w", ErrOverloaded)
	})
	if !errors.Is(err, ErrOverloaded) || calls != 2 {
		t.Fatalf("exhausted attempts: err=%v calls=%d", err, calls)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = Retry(ctx, 3, time.Hour, func() error { return &OverloadError{Scope: "global"} })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled backoff: %v", err)
	}
}

// TestOverloadedActionsShedNotQueue: with the global bound held, every
// evaluating action type sheds with the typed error and sheds fast (no
// waiting on the serializing mutex).
func TestOverloadedActionsShedNotQueue(t *testing.T) {
	db, idx := smallFixture(t)
	s, err := New(db, idx, WithMaxInFlight(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	ss, _ := s.Create(ctx)
	u, _ := ss.AddNode("C")
	v, _ := ss.AddNode("N")
	if _, err := ss.AddEdge(ctx, u, v); err != nil {
		t.Fatal(err)
	}

	hold, err := ss.admit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.AddEdge(ctx, u, v); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("AddEdge: %v", err)
	}
	if _, err := ss.DeleteEdge(ctx, 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("DeleteEdge: %v", err)
	}
	if _, err := ss.ChooseSimilarity(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("ChooseSimilarity: %v", err)
	}
	if _, err := ss.Run(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Run: %v", err)
	}
	// Reads stay available under overload: shedding protects evaluation
	// capacity, not visibility.
	if _, err := ss.Describe(); err != nil {
		t.Fatalf("Describe under overload: %v", err)
	}
	hold()
	if _, err := ss.Run(ctx); err != nil {
		t.Fatalf("Run after release: %v", err)
	}
}
