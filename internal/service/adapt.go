// The service side of the SLO telemetry and adaptive runtime: construction
// of the rolling-window collector and tracker, the trace→window bridge, the
// three knob controllers (admission MaxInFlight, workpool size, candidate-
// cache byte budget), and the tick loop that drives them. Data flow:
//
//	serving path ──observe──▶ slo.Collector (rolling windows)
//	trace spans  ──bridge───▶ slo.Collector (trace-only phases)
//	cumulative counters ──sample──▶ slo.Tracker (windowed deltas)
//	                                  │ tick
//	                                  ▼
//	                             slo.Report ──▶ controllers ──set──▶ knobs
//	                                  │                        │
//	                                  ▼                        ▼
//	                         /slo, praguecli slo       adapt_* metrics,
//	                                                   adapt trace spans
//
// Controllers read nothing but the Report, so their trajectories are a pure
// function of the windowed telemetry — deterministic under clock.Fake.

package service

import (
	"time"

	"prague/internal/clock"
	"prague/internal/core"
	"prague/internal/metrics"
	"prague/internal/slo"
	"prague/internal/trace"
)

// Tracker source names (see slo.Tracker.Add*Source).
const (
	srcCacheHits      = "candcache_hits"
	srcCacheMisses    = "candcache_misses"
	srcCacheEvictions = "candcache_evictions"
	srcCacheBytes     = "candcache_bytes"
	srcWorkerUtil     = "worker_util"
)

// sloEnabled reports whether any option turned the SLO telemetry on.
func (o *Options) sloEnabled() bool {
	return o.SLO != (slo.Targets{}) || o.SLOWindow > 0 || o.Adaptive
}

// initSLO builds the collector, tracker, sources, and controllers, wires the
// trace-span bridge, and starts the tick loop. Called once from New, before
// the ops server (which serves SLOReport) binds.
func (s *Service) initSLO() {
	if !s.opt.sloEnabled() {
		return
	}
	s.col = slo.NewCollector(s.clk, s.opt.SLOWindow)
	s.slotrack = slo.NewTracker(s.col, s.opt.SLO, s.tracer, s.reg)

	// Bridge: phases only the tracer times (index probes, cache fetches,
	// verification fan-outs) flow into the windows as their span trees
	// finalize. They populate only while tracing is enabled — the windows
	// for SPIG build and total SRT are fed directly by the serving path and
	// are always live.
	if s.tracer != nil {
		col := s.col
		s.tracer.SetSpanObserver(func(kind string, d time.Duration) {
			switch kind {
			case trace.KindIndexProbe.String():
				col.ObservePhase(slo.PhaseIndexProbe, d)
			case trace.KindCandFetch.String():
				col.ObservePhase(slo.PhaseCandCache, d)
			case trace.KindVerifyBatch.String():
				col.ObservePhase(slo.PhaseVerify, d)
			}
		})
	}

	// Sampled sources: cumulative cache counters (differentiated into
	// windowed deltas by the tracker) and instantaneous worker busyness
	// (averaged over the window's ticks).
	if s.cache != nil {
		cache := s.cache
		s.slotrack.AddCounterSource(srcCacheHits, func() int64 { return cache.Stats().Hits })
		s.slotrack.AddCounterSource(srcCacheMisses, func() int64 { return cache.Stats().Misses })
		s.slotrack.AddCounterSource(srcCacheEvictions, func() int64 { return cache.Stats().Evictions })
		s.slotrack.AddGaugeSource(srcCacheBytes, func() float64 { return float64(cache.SizeBytes()) })
	}
	pool := s.pool
	s.slotrack.AddGaugeSource(srcWorkerUtil, func() float64 {
		if w := pool.Workers(); w > 0 {
			return float64(pool.Busy()) / float64(w)
		}
		return 0
	})

	s.controllers = s.buildControllers()
	// Publish each knob's starting value so the adapt_* gauges exist (and
	// read correctly) before the first adjustment.
	for _, c := range s.controllers {
		s.reg.Counter(metrics.GaugeAdaptPrefix + c.Name).Set(c.Get())
	}

	interval := s.opt.AdaptInterval
	if interval <= 0 {
		interval = s.col.Window() / 8
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	s.stopAdapt = make(chan struct{})
	s.adaptDone = make(chan struct{})
	// Ticker created here, not in the goroutine, so a test clock advanced
	// right after New is guaranteed to reach it (same rule as the janitor).
	go s.adaptLoop(s.clk.NewTicker(interval))
}

// buildControllers binds the slo policies to this service's knobs. The
// controllers are built whenever the SLO telemetry is on — their knob
// readouts feed the report — but Decide/Set only run under WithAdaptive.
func (s *Service) buildControllers() []*slo.Controller {
	var cs []*slo.Controller

	if init := int64(s.opt.MaxInFlight); init > 0 {
		cs = append(cs, &slo.Controller{
			Knob: slo.Knob{
				Name: "max_inflight",
				Min:  maxI64(1, init/4),
				Max:  init * 16,
				Get:  s.inflightLimit.Load,
				Set:  s.inflightLimit.Store,
			},
			Decide: slo.InFlightPolicy(s.opt.SLO),
		})
	}

	poolInit := int64(s.pool.Workers())
	cs = append(cs, &slo.Controller{
		Knob: slo.Knob{
			Name: "workpool_size",
			Min:  1,
			Max:  maxI64(4*poolInit, poolInit+2),
			Get:  func() int64 { return int64(s.pool.Workers()) },
			Set:  func(v int64) { s.pool.Resize(int(v)) },
		},
		Decide: slo.WorkerPolicy(s.opt.SLO, srcWorkerUtil),
	})

	if s.cache != nil {
		budget := s.cache.Budget()
		cs = append(cs, &slo.Controller{
			Knob: slo.Knob{
				Name: "cache_bytes",
				Min:  maxI64(1, budget/4),
				Max:  budget * 8,
				Get:  s.cache.Budget,
				Set:  s.cache.SetBudget,
			},
			Decide: slo.CachePolicy(slo.CacheSources{
				Hits:      srcCacheHits,
				Misses:    srcCacheMisses,
				Evictions: srcCacheEvictions,
				Bytes:     srcCacheBytes,
			}),
		})
	}
	return cs
}

func (s *Service) adaptLoop(t clock.Ticker) {
	defer close(s.adaptDone)
	defer t.Stop()
	for {
		select {
		case <-s.stopAdapt:
			return
		case <-t.C():
			s.adaptTick()
		}
	}
}

// adaptTick runs one tracker tick and, under WithAdaptive, one decision
// cycle per controller. Exposed to tests (same package) so controller
// trajectories can be driven tick by tick under clock.Fake.
func (s *Service) adaptTick() {
	rep := s.slotrack.Tick(s.clk.Now())
	if !s.opt.Adaptive {
		return
	}
	for _, c := range s.controllers {
		c.Apply(rep, s.reg, s.tracer)
	}
}

// SLOReport returns the rolling-window SLO report: phase/stage windows,
// rates, burn rates, violation totals, and current controller knob values.
// The zero Report (Enabled false) is returned when the SLO telemetry is off.
func (s *Service) SLOReport() slo.Report {
	if s.slotrack == nil {
		return slo.Report{}
	}
	r := s.slotrack.Report(s.clk.Now())
	if len(s.controllers) > 0 {
		r.Controllers = make(map[string]int64, len(s.controllers))
		for _, c := range s.controllers {
			r.Controllers[c.Name] = c.Get()
		}
	}
	return r
}

// SLOCollector returns the rolling-window collector, or nil when the SLO
// telemetry is off. Benchmarks flip its SetEnabled to measure the disabled
// path; the serving path's observe calls are nil-safe either way.
func (s *Service) SLOCollector() *slo.Collector { return s.col }

// SLOTargets returns the declared targets (zero when none were declared).
func (s *Service) SLOTargets() slo.Targets { return s.slotrack.Targets() }

// MaxInFlight returns the current global admission bound (0: unlimited).
// Under WithAdaptive the admission controller moves it at runtime.
func (s *Service) MaxInFlight() int { return int(s.inflightLimit.Load()) }

// SetMaxInFlight overrides the global admission bound at runtime (0 or
// negative: unlimited). The adaptive controller — when enabled — keeps
// adjusting from the new value.
func (s *Service) SetMaxInFlight(n int) {
	if n < 0 {
		n = 0
	}
	s.inflightLimit.Store(int64(n))
}

// stageOf maps a ladder outcome to its SLO stage window.
func stageOf(out core.RunOutcome) slo.Stage {
	switch out.Stage {
	case core.StageSimilarity:
		return slo.StageSimilarity
	case core.StageCachedGood:
		return slo.StageCached
	case core.StagePartial:
		return slo.StageTruncated
	default:
		if out.Truncated {
			return slo.StageTruncated
		}
		return slo.StageExact
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
