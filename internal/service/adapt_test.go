package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"prague/internal/clock"
	"prague/internal/metrics"
	"prague/internal/slo"
	"prague/internal/trace"
)

// newAdaptFixture builds a service with SLO telemetry on a fake clock. The
// adapt interval is set far beyond anything the tests advance, so the
// background loop never races the manual adaptTick calls below.
func newAdaptFixture(t *testing.T, adaptive bool) (*Service, *clock.Fake) {
	t.Helper()
	db, idx := smallFixture(t)
	fake := clock.NewFake(time.Unix(1700000000, 0))
	svc, err := New(db, idx,
		WithSessionTTL(0),
		WithMetrics(metrics.NewRegistry()),
		WithClock(fake),
		WithVerifyWorkers(2),
		WithMaxInFlight(4),
		WithTracing(true),
		WithSLO(10*time.Millisecond, 0.5),
		WithSLOWindow(800*time.Millisecond),
		WithAdaptive(adaptive),
		WithAdaptInterval(time.Hour),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc, fake
}

// feed injects one synthetic telemetry round: n SRT observations of dur plus
// admitted/shed rate events.
func feed(svc *Service, n int, dur time.Duration, admitted, shed int64) {
	for i := 0; i < n; i++ {
		svc.col.ObservePhase(slo.PhaseSRT, dur)
	}
	svc.col.AddRate(slo.RateAdmitted, admitted)
	svc.col.AddRate(slo.RateShed, shed)
}

// TestAdaptiveControllerDeterminism drives the same synthetic load twice
// through two identically configured services and requires the controllers
// to walk the same knob trajectory: the whole control loop is a pure
// function of windowed telemetry under a fake clock.
func TestAdaptiveControllerDeterminism(t *testing.T) {
	run := func() []string {
		svc, fake := newAdaptFixture(t, true)
		var traj []string
		step := func(n int, dur time.Duration, admitted, shed int64) {
			feed(svc, n, dur, admitted, shed)
			svc.adaptTick()
			traj = append(traj, fmt.Sprintf("inflight=%d workers=%d cache=%d",
				svc.MaxInFlight(), svc.pool.Workers(), svc.cache.Budget()))
			fake.Advance(100 * time.Millisecond)
		}
		step(50, 2*time.Millisecond, 50, 5)    // headroom + shedding: admission grows
		step(50, 2*time.Millisecond, 50, 5)    // grows again
		step(300, 30*time.Millisecond, 300, 0) // p99 over target: backs off
		step(0, 0, 0, 0)                       // thin signal: hold
		return traj
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectory diverged at step %d:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
	t.Logf("trajectory: %v", a)
}

func TestAdaptiveMovesKnobsAndMeters(t *testing.T) {
	svc, fake := newAdaptFixture(t, true)
	if svc.MaxInFlight() != 4 {
		t.Fatalf("initial MaxInFlight = %d", svc.MaxInFlight())
	}
	// adapt_* gauges exist (at the initial knob values) before any tick.
	snap := svc.Snapshot().Counters
	if snap[metrics.GaugeAdaptPrefix+"max_inflight"] != 4 {
		t.Fatalf("initial adapt gauge = %d, want 4", snap[metrics.GaugeAdaptPrefix+"max_inflight"])
	}

	// Headroom plus shedding: the admission controller must grow the bound.
	feed(svc, 50, 2*time.Millisecond, 50, 10)
	svc.adaptTick()
	grown := svc.MaxInFlight()
	if grown <= 4 {
		t.Fatalf("admission bound did not grow: %d", grown)
	}

	// Sustained overload: p99 far beyond target backs the bound off again.
	fake.Advance(time.Second) // age the fast window out
	feed(svc, 100, 50*time.Millisecond, 100, 0)
	svc.adaptTick()
	if got := svc.MaxInFlight(); got >= grown {
		t.Fatalf("admission bound did not back off: %d (was %d)", got, grown)
	}

	snap = svc.Snapshot().Counters
	if snap[metrics.CounterAdaptAdjust] < 2 {
		t.Fatalf("adapt_adjustments_total = %d, want ≥ 2", snap[metrics.CounterAdaptAdjust])
	}
	if snap[metrics.GaugeAdaptPrefix+"max_inflight"] != int64(svc.MaxInFlight()) {
		t.Fatalf("adapt gauge %d out of sync with knob %d",
			snap[metrics.GaugeAdaptPrefix+"max_inflight"], svc.MaxInFlight())
	}

	// Every adjustment left an adapt span in the journal.
	found := 0
	for _, sp := range svc.SlowSpans() {
		if sp.Kind == trace.KindAdapt.String() {
			found++
			if sp.Attrs["controller"] == "" || sp.Attrs["from"] == "" || sp.Attrs["to"] == "" {
				t.Fatalf("adapt span missing attrs: %+v", sp.Attrs)
			}
		}
	}
	if int64(found) != snap[metrics.CounterAdaptAdjust] {
		t.Fatalf("adapt spans = %d, adjustments = %d", found, snap[metrics.CounterAdaptAdjust])
	}
}

func TestNonAdaptiveTelemetryHoldsKnobs(t *testing.T) {
	svc, _ := newAdaptFixture(t, false)
	feed(svc, 50, 2*time.Millisecond, 50, 25)
	svc.adaptTick()
	if got := svc.MaxInFlight(); got != 4 {
		t.Fatalf("non-adaptive service moved MaxInFlight to %d", got)
	}
	if got := svc.Snapshot().Counters[metrics.CounterAdaptAdjust]; got != 0 {
		t.Fatalf("non-adaptive service metered %d adjustments", got)
	}
	// The report is still live: knob readouts and windows populate.
	rep := svc.SLOReport()
	if !rep.Enabled {
		t.Fatal("report disabled with SLO telemetry on")
	}
	if rep.Controllers["max_inflight"] != 4 {
		t.Fatalf("report controllers = %v", rep.Controllers)
	}
	if d := rep.Phases[slo.PhaseSRT.String()]; d.Count != 50 {
		t.Fatalf("report SRT window = %+v", d)
	}
	if rep.ShedRate != float64(25)/float64(75) {
		t.Fatalf("report shed rate = %v", rep.ShedRate)
	}
}

func TestSLOReportDisabledByDefault(t *testing.T) {
	db, idx := smallFixture(t)
	svc, err := New(db, idx, WithSessionTTL(0), WithMetrics(metrics.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if rep := svc.SLOReport(); rep.Enabled {
		t.Fatalf("SLO report enabled without any SLO option: %+v", rep)
	}
	if svc.col != nil || svc.slotrack != nil {
		t.Fatal("SLO telemetry constructed without any SLO option")
	}
}

// TestViolationAccounting drives a sustained breach through the service
// tracker and checks the violation counters and journal spans.
func TestViolationAccounting(t *testing.T) {
	svc, fake := newAdaptFixture(t, false)
	for tick := 0; tick < 3; tick++ {
		feed(svc, 100, 50*time.Millisecond, 100, 0)
		svc.adaptTick()
		fake.Advance(100 * time.Millisecond)
	}
	rep := svc.SLOReport()
	if !rep.Violating || rep.Violations != 1 {
		t.Fatalf("sustained breach: %+v", rep)
	}
	if rep.ViolationSec <= 0 {
		t.Fatalf("no violation time accumulated: %+v", rep)
	}
	if got := svc.Snapshot().Counters[metrics.CounterSLOViolations]; got != 1 {
		t.Fatalf("slo_violations_total = %d", got)
	}
	found := false
	for _, sp := range svc.SlowSpans() {
		if sp.Kind == trace.KindSLOViolation.String() {
			found = true
		}
	}
	if !found {
		t.Fatal("no slo_violation span journaled")
	}
}

// TestRunSpanFilterAndEpochAttrs checks the PR 7 follow-through: every run
// span carries the engine's filter-chooser explanation and the store epoch
// the run was pinned to.
func TestRunSpanFilterAndEpochAttrs(t *testing.T) {
	db, idx := smallFixture(t)
	svc, err := New(db, idx, WithSessionTTL(0), WithMetrics(metrics.NewRegistry()), WithTracing(true))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ss := tracedSession(t, svc)
	sp, err := ss.LastRunTrace()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Attrs["filter"] == "" {
		t.Fatalf("run span has no filter explanation: %+v", sp.Attrs)
	}
	if got := sp.Attrs["epoch"]; got != "0" {
		t.Fatalf("run span epoch = %q, want \"0\"", got)
	}

	// After a mutation the next run pins the new epoch.
	if _, err := svc.InsertGraph(context.Background(), db[0].Clone()); err != nil {
		t.Fatal(err)
	}
	ss2 := tracedSession(t, svc)
	sp2, err := ss2.LastRunTrace()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := strconv.Atoi(sp2.Attrs["epoch"]); got != 1 {
		t.Fatalf("post-mutation run span epoch = %q, want \"1\"", sp2.Attrs["epoch"])
	}
}

// TestOpsEndpointsUnderLoad hammers every ops endpoint while sessions
// formulate, run, and the store mutates — the -race proof that the
// observability surface reads nothing unsynchronized from the serving path.
func TestOpsEndpointsUnderLoad(t *testing.T) {
	db, idx := smallFixture(t)
	svc, err := New(db, idx,
		WithSessionTTL(0),
		WithMetrics(metrics.NewRegistry()),
		WithTracing(true),
		WithOpsServer("127.0.0.1:0"),
		WithMaxInFlight(8),
		WithSLO(time.Second, 0.9),
		WithSLOWindow(100*time.Millisecond),
		WithAdaptive(true),
		WithAdaptInterval(10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	base := "http://" + svc.OpsAddr()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Two session workers formulating and running; overloads are expected.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := formulateAndRun(context.Background(), svc, r); err != nil &&
					!errors.Is(err, ErrOverloaded) {
					t.Errorf("session worker: %v", err)
					return
				}
			}
		}(int64(w) + 1)
	}

	// One mutator inserting and deleting graphs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := context.Background()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id, err := svc.InsertGraph(ctx, db[i%len(db)].Clone())
			if err != nil {
				if errors.Is(err, ErrOverloaded) {
					continue
				}
				t.Errorf("mutator insert: %v", err)
				return
			}
			if err := svc.DeleteGraph(ctx, id); err != nil && !errors.Is(err, ErrOverloaded) {
				t.Errorf("mutator delete: %v", err)
				return
			}
		}
	}()

	// Four readers hammering the ops surface.
	paths := []string{"/healthz", "/metrics", "/metrics?format=prom", "/slo", "/trace/slow"}
	client := &http.Client{Timeout: 5 * time.Second}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := client.Get(base + paths[(w+i)%len(paths)])
				if err != nil {
					t.Errorf("ops reader: %v", err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Errorf("ops reader body: %v", err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("ops reader: %s = %d", paths[(w+i)%len(paths)], resp.StatusCode)
					return
				}
			}
		}(w)
	}

	// Stop the open-ended workers once every reader has finished its quota.
	readersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(readersDone)
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	select {
	case <-readersDone:
	case <-time.After(30 * time.Second):
		t.Fatal("load workers did not drain")
	}
}
