// Package service multiplexes many concurrent PRAGUE formulation sessions
// over one graph store — the layer between a visual front-end fleet and the
// single-user core engine. A Service owns a shared bounded verification
// worker pool (so total verification concurrency stays fixed no matter how
// many users are formulating), id-addressed sessions with per-session
// mutexes, an idle-session janitor, and a metrics registry observing every
// step. The store is a live handle: Service.InsertGraph and Service.DeleteGraph mutate
// the database online with incremental index maintenance, publishing epoch
// snapshots that in-flight sessions are pinned against — every action
// observes exactly one epoch.
//
// Relative to the bare core.Engine, the service also enforces the explicit
// formulation protocol: Run on a session whose exact candidate set emptied
// returns ErrAwaitingChoice until the caller resolves the Modify-or-SimQuery
// decision, rather than silently degrading.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"prague/internal/candcache"
	"prague/internal/clock"
	"prague/internal/core"
	"prague/internal/faultinject"
	"prague/internal/graph"
	"prague/internal/index"
	"prague/internal/metrics"
	"prague/internal/ops"
	"prague/internal/rpcstore"
	"prague/internal/slo"
	"prague/internal/store"
	"prague/internal/trace"
	"prague/internal/workpool"
)

// Sentinel errors of the service layer; core's sentinels (ErrEmptyQuery,
// ErrAwaitingChoice, ...) pass through wrapped.
var (
	// ErrSessionNotFound: the session id is unknown, deleted, or evicted.
	ErrSessionNotFound = errors.New("session not found")
	// ErrServiceClosed: the service has been shut down.
	ErrServiceClosed = errors.New("service closed")
	// ErrTooManySessions: the configured session limit is reached.
	ErrTooManySessions = errors.New("session limit reached")
	// ErrNoTrace: a trace report was requested but tracing is disabled or
	// the session has no traced Run yet.
	ErrNoTrace = errors.New("no traced run")
)

// DefaultCandCacheBytes is the default byte budget of the shared
// cross-session candidate cache. 32 MiB holds roughly a quarter-million
// average candidate lists of the AIDS-scale datasets — far more distinct
// fragments than a realistic formulation fleet touches — while staying
// negligible next to the indexes.
const DefaultCandCacheBytes = 32 << 20

// Options collects the construction-time knobs; set them via the With*
// functional options.
type Options struct {
	Sigma         int
	VerifyWorkers int
	SessionTTL    time.Duration
	MaxSessions   int
	CandCache     int64
	Metrics       *metrics.Registry
	Clock         clock.Clock

	// Store layout: an explicit pre-built store wins; otherwise
	// RemoteEndpoints dials a remote shard-server topology (the service
	// owns the dialed store and closes it on Close); otherwise Shards > 1
	// hash-partitions the database at construction; otherwise the store is
	// monolithic.
	Store           store.Store
	Shards          int
	RemoteEndpoints []string

	Trace         bool          // record per-action span trees
	SlowThreshold time.Duration // slow-journal admission threshold
	SlowJournal   int           // slow-journal capacity (0: trace default)
	OpsAddr       string        // ops/debug HTTP listen address ("" disables)

	// Robustness knobs (see overload.go and the core degradation ladder).
	MaxInFlight    int                   // global in-flight evaluating actions (0: unlimited)
	SessionQueue   int                   // per-session in-flight + queued actions (0: unlimited)
	ActionDeadline time.Duration         // per-action budget; Run degrades, others cancel (0: none)
	Injector       *faultinject.Injector // deterministic fault injection (nil: none)

	FilterMode core.FilterMode // verify-prefilter arm selection (default FilterAuto)

	// SLO telemetry / adaptive runtime (see prague/internal/slo). The
	// windowed collector turns on when any of these is set.
	SLO           slo.Targets   // declared SLO targets (zero: none declared)
	SLOWindow     time.Duration // rolling-window span (0: slo.DefaultWindow)
	Adaptive      bool          // apply the telemetry-driven controllers
	AdaptInterval time.Duration // tracker/controller tick (0: window/8)

	janitorHook func(evicted int) // test observability for janitor sweeps
}

// Option configures a Service at construction.
type Option func(*Options)

// WithSigma sets the subgraph distance threshold σ for sessions (default 3,
// the paper's setting).
func WithSigma(sigma int) Option { return func(o *Options) { o.Sigma = sigma } }

// WithVerifyWorkers bounds the shared verification pool (default
// GOMAXPROCS). This replaces the deprecated per-engine SetVerifyWorkers.
func WithVerifyWorkers(n int) Option { return func(o *Options) { o.VerifyWorkers = n } }

// WithSessionTTL sets how long an idle session survives before the janitor
// evicts it (default 30m; ≤ 0 disables eviction).
func WithSessionTTL(d time.Duration) Option { return func(o *Options) { o.SessionTTL = d } }

// WithMaxSessions caps concurrently live sessions (default 0: unlimited).
func WithMaxSessions(n int) Option { return func(o *Options) { o.MaxSessions = n } }

// WithMetrics records service metrics into reg instead of metrics.Default.
func WithMetrics(reg *metrics.Registry) Option { return func(o *Options) { o.Metrics = reg } }

// WithCandidateCache sets the byte budget of the shared cross-session
// candidate/result cache (default DefaultCandCacheBytes; ≤ 0 disables
// caching entirely).
func WithCandidateCache(bytes int64) Option { return func(o *Options) { o.CandCache = bytes } }

// WithClock overrides the time source (tests inject a clock.Fake so
// TTL/idle-eviction behaviour is deterministic).
func WithClock(c clock.Clock) Option { return func(o *Options) { o.Clock = c } }

// WithStore serves sessions from a pre-built graph store (e.g. a sharded
// store loaded from its persisted per-shard layout); NewFromStore is the
// shorthand. The db and idx arguments of New are ignored and deprecated when
// this option is present. While the service is live, mutate the store through
// Service.InsertGraph / Service.DeleteGraph rather than directly, so mutations pass
// admission control and land in the metrics.
func WithStore(st store.Store) Option { return func(o *Options) { o.Store = st } }

// WithShards hash-partitions the database and its action-aware indexes into
// n shards at construction; candidate enumeration and verification then fan
// out per shard and merge deterministically, so results are byte-identical
// to the monolithic layout. n ≤ 1 keeps the monolithic store (the default).
// Ignored when WithStore supplies a store directly.
func WithShards(n int) Option { return func(o *Options) { o.Shards = n } }

// WithRemoteShards serves sessions from a remote shard-server topology:
// New dials every endpoint (rpcstore shard servers over TCP), validates
// that the replicas agree on layout and epoch, and builds the coordinator
// store. The engine, candidate cache, and SLO runtime are unchanged — only
// candidate enumeration and mutation cross the network. The service owns
// the dialed store and closes it on Close. Ignored when WithStore supplies
// a store directly.
func WithRemoteShards(endpoints ...string) Option {
	return func(o *Options) { o.RemoteEndpoints = endpoints }
}

// WithTracing enables (or disables) per-action structured tracing: every
// AddEdge/DeleteEdge/Run records a span tree of its evaluation phases, SRT
// breakdown reports become available per session, and phase_* histograms
// feed the metrics registry. Disabled tracing costs one atomic nil-check
// per action (default: disabled).
func WithTracing(on bool) Option { return func(o *Options) { o.Trace = on } }

// WithSlowThreshold admits only traced actions at least this slow into the
// bounded slow-action journal (0, the default, journals every traced
// action). Implies WithTracing(true).
func WithSlowThreshold(d time.Duration) Option {
	return func(o *Options) { o.Trace = true; o.SlowThreshold = d }
}

// WithSlowJournalSize bounds the slow-action journal to the n slowest span
// trees (default trace.DefaultJournalSize). Implies WithTracing(true).
func WithSlowJournalSize(n int) Option {
	return func(o *Options) { o.Trace = true; o.SlowJournal = n }
}

// WithOpsServer serves the live ops/debug surface on addr (host:port;
// ":0" picks a free port — read it back with OpsAddr): /healthz, /metrics,
// /trace/slow, and /debug/pprof. The server stops with Close.
func WithOpsServer(addr string) Option { return func(o *Options) { o.OpsAddr = addr } }

// WithMaxInFlight bounds the service-wide number of evaluating actions
// (AddEdge/DeleteEdge/ChooseSimilarity/Run) in flight at once. Excess
// actions are shed immediately with a typed *OverloadError instead of
// queueing (default 0: unlimited).
func WithMaxInFlight(n int) Option { return func(o *Options) { o.MaxInFlight = n } }

// WithSessionQueue bounds, per session, the number of evaluating actions
// running or waiting on the session's serializing mutex. One misbehaving
// client cannot pile work service-wide (default 0: unlimited).
func WithSessionQueue(n int) Option { return func(o *Options) { o.SessionQueue = n } }

// WithActionDeadline budgets each evaluating action. Run degrades down the
// core ladder when the budget expires (partial → similarity bounds → last
// known good), so admitted Runs answer within ~the deadline; formulation
// actions are cancelled at the deadline and report a wrapped
// context.DeadlineExceeded (default 0: no budget).
func WithActionDeadline(d time.Duration) Option { return func(o *Options) { o.ActionDeadline = d } }

// WithFilterChooser sets the verify-prefilter mode for every session's
// engine: core.FilterAuto (the default) picks per action between the bare
// A²F probe, Grafil-style count filtering, and signature pruning from a
// small cost model; the other modes pin one arm. All arms return identical
// verified answers — the mode only changes how much work verification does.
// Decisions surface in the filter_arm_* / filter_pruned_total metrics and
// trace spans.
func WithFilterChooser(m core.FilterMode) Option { return func(o *Options) { o.FilterMode = m } }

// WithFaultInjection arms deterministic fault injection on every action the
// service evaluates (chaos testing; see prague/internal/faultinject). A nil
// injector — the default — costs nothing on the hot path.
func WithFaultInjection(in *faultinject.Injector) Option { return func(o *Options) { o.Injector = in } }

// WithSLO declares the service-level objectives — a target p99 system
// response time and a tolerated shed-rate fraction over the rolling window —
// and turns on the windowed SLO telemetry (phase/stage histograms, rate
// windows, /slo endpoint, burn rates, violation spans in the trace journal).
// Zero values declare no target on that axis but still enable the windows.
func WithSLO(p99SRT time.Duration, maxShedRate float64) Option {
	return func(o *Options) { o.SLO = slo.Targets{P99SRT: p99SRT, MaxShedRate: maxShedRate} }
}

// WithSLOWindow sets the rolling-window span of the SLO telemetry (default
// slo.DefaultWindow) and enables it even without declared targets.
func WithSLOWindow(d time.Duration) Option { return func(o *Options) { o.SLOWindow = d } }

// WithAdaptive turns on the telemetry-driven controllers: workpool size,
// admission MaxInFlight, and candidate-cache byte budget are adjusted from
// the rolling windows on every tracker tick, each change emitted as an
// adapt trace span and adapt_* metric. Implies the SLO telemetry.
func WithAdaptive(on bool) Option { return func(o *Options) { o.Adaptive = on } }

// WithAdaptInterval overrides the tracker/controller tick interval (default
// one eighth of the rolling window). Benchmarks and tests shorten it so the
// controllers converge inside a bounded run.
func WithAdaptInterval(d time.Duration) Option { return func(o *Options) { o.AdaptInterval = d } }

// withJanitorHook registers a callback invoked after every janitor sweep
// with the number of sessions it evicted (tests).
func withJanitorHook(fn func(evicted int)) Option {
	return func(o *Options) { o.janitorHook = fn }
}

// Service serves concurrent formulation sessions over one immutable
// database + index pair. All methods are safe for concurrent use.
type Service struct {
	st         store.Store
	ownedStore io.Closer // set when New dialed the store itself (remote shards)
	opt        Options
	pool       *workpool.Pool
	reg        *metrics.Registry
	clk        clock.Clock
	cache      *candcache.Cache // shared across sessions; nil when disabled
	tracer     *trace.Tracer    // nil when tracing was never requested
	ops        *ops.Server      // nil unless WithOpsServer

	// Global admission bound: inflightN counts actions in flight,
	// inflightLimit is the adjustable cap (0: unlimited). Admission is
	// non-blocking and lock-free (overload.go); the cap being an atomic —
	// rather than a channel capacity — is what lets the adaptive runtime's
	// admission controller move it while the service serves.
	inflightN     atomic.Int64
	inflightLimit atomic.Int64

	// SLO telemetry / adaptive runtime (nil unless enabled via options).
	col         *slo.Collector
	slotrack    *slo.Tracker
	controllers []*slo.Controller

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   int64
	closed   bool

	stopJanitor chan struct{}
	janitorDone chan struct{}
	stopAdapt   chan struct{}
	adaptDone   chan struct{}
}

// NewFromStore builds a service directly over a graph store — the primary
// construction path: the store is the one handle for the database, its
// indexes, and online mutation. Monolithic (store.NewMem), hash-partitioned
// (store.NewSharded), and reloaded (store.LoadMem / store.LoadSharded)
// stores all serve identically.
func NewFromStore(st store.Store, opts ...Option) (*Service, error) {
	if st == nil {
		return nil, fmt.Errorf("service: nil store: %w", core.ErrNilIndex)
	}
	return New(nil, nil, append(append([]Option(nil), opts...), WithStore(st))...)
}

// New builds a service over the database and indexes, wrapping them in a
// monolithic store (or a sharded one under WithShards). New is the thin
// compatibility path; NewFromStore is primary. When WithStore is also
// passed, db and idx are redundant and ignored — pass them as nil or migrate
// to NewFromStore.
func New(db []*graph.Graph, idx *index.Set, opts ...Option) (*Service, error) {
	opt := Options{Sigma: 3, SessionTTL: 30 * time.Minute, CandCache: DefaultCandCacheBytes}
	for _, o := range opts {
		o(&opt)
	}
	if opt.Sigma < 0 {
		return nil, fmt.Errorf("service: σ = %d: %w", opt.Sigma, core.ErrNegativeSigma)
	}
	st := opt.Store
	ownedStore := false
	if st == nil {
		var err error
		switch {
		case len(opt.RemoteEndpoints) > 0:
			st, err = rpcstore.Dial(context.Background(), opt.RemoteEndpoints)
			ownedStore = err == nil
		case opt.Shards > 1:
			st, err = store.NewSharded(db, idx, opt.Shards)
		default:
			st, err = store.NewMem(db, idx)
		}
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
	}
	reg := opt.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	clk := opt.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	s := &Service{
		st:       st,
		opt:      opt,
		pool:     workpool.New(opt.VerifyWorkers),
		reg:      reg,
		clk:      clk,
		cache:    candcache.New(opt.CandCache, reg),
		sessions: map[string]*Session{},
	}
	if ownedStore {
		s.ownedStore, _ = st.(io.Closer)
	}
	// A store that exports its own counters (the remote coordinator's
	// shard_rpc_* family and endpoint-health gauges) reports into the
	// service's registry.
	if ms, ok := st.(interface{ SetMetrics(*metrics.Registry) }); ok {
		ms.SetMetrics(reg)
	}
	reg.Counter(metrics.CounterShardCount).Set(int64(st.NumShards()))
	minG, maxG := st.Shard(0).NumGraphs(), st.Shard(0).NumGraphs()
	for i := 1; i < st.NumShards(); i++ {
		if n := st.Shard(i).NumGraphs(); n < minG {
			minG = n
		} else if n > maxG {
			maxG = n
		}
	}
	reg.Counter(metrics.CounterShardGraphsMin).Set(int64(minG))
	reg.Counter(metrics.CounterShardGraphsMax).Set(int64(maxG))
	if opt.Trace {
		s.tracer = trace.New(trace.Options{
			Enabled:       true,
			SlowThreshold: opt.SlowThreshold,
			JournalSize:   opt.SlowJournal,
			Registry:      reg,
		})
	}
	if opt.MaxInFlight > 0 {
		s.inflightLimit.Store(int64(opt.MaxInFlight))
	}
	s.initSLO() // before ops: /slo reads the tracker
	if opt.OpsAddr != "" {
		srv, err := ops.New(opt.OpsAddr, reg, s.tracer, func() error {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.closed {
				return ErrServiceClosed
			}
			return nil
		}, s.SLOReport)
		if err != nil {
			s.pool.Close()
			return nil, fmt.Errorf("service: %w", err)
		}
		s.ops = srv
	}
	s.pool.OnBatch = func(n int) {
		reg.Counter(metrics.CounterVerifyTasks).Add(int64(n))
		reg.Counter(metrics.CounterVerifyBatches).Inc()
	}
	s.pool.OnPanic = func(any) {
		reg.Counter(metrics.CounterWorkerPanics).Inc()
	}
	if opt.SessionTTL > 0 {
		interval := opt.SessionTTL / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		s.stopJanitor = make(chan struct{})
		s.janitorDone = make(chan struct{})
		// The ticker is created here, not in the goroutine, so a test clock
		// advanced right after New is guaranteed to reach it.
		go s.janitor(clk.NewTicker(interval))
	}
	return s, nil
}

// Close shuts the service down: the janitor stops, the verification pool
// drains, and all sessions are dropped. Further calls return
// ErrServiceClosed; Close is idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	victims := make([]*Session, 0, len(s.sessions))
	for id, ss := range s.sessions {
		victims = append(victims, ss)
		delete(s.sessions, id)
	}
	s.mu.Unlock()

	for _, ss := range victims {
		ss.mu.Lock()
		ss.gone = true
		ss.svcClosed = true
		ss.mu.Unlock()
	}
	s.reg.Counter(metrics.CounterSessionsActive).Add(-int64(len(victims)))
	if s.stopJanitor != nil {
		close(s.stopJanitor)
		<-s.janitorDone
	}
	if s.stopAdapt != nil {
		close(s.stopAdapt)
		<-s.adaptDone
	}
	s.pool.Close()
	s.ops.Close() //nolint:errcheck // shutdown timeout only
	if s.ownedStore != nil {
		s.ownedStore.Close() //nolint:errcheck // remote conn teardown
	}
}

// Metrics returns the registry the service records into.
func (s *Service) Metrics() *metrics.Registry { return s.reg }

// Tracer returns the service's tracer, or nil when tracing was never
// requested (trace.Tracer methods are nil-safe).
func (s *Service) Tracer() *trace.Tracer { return s.tracer }

// SlowSpans returns the slow-action journal: the full span trees of the
// slowest traced actions, slowest first. Empty without tracing.
func (s *Service) SlowSpans() []*trace.SpanData { return s.tracer.SlowSpans() }

// OpsAddr returns the bound address of the ops/debug server, or "" when
// WithOpsServer was not used.
func (s *Service) OpsAddr() string { return s.ops.Addr() }

// CandidateCache returns the shared cross-session candidate cache, or nil
// when caching is disabled.
func (s *Service) CandidateCache() *candcache.Cache { return s.cache }

// Store returns the graph store sessions evaluate against (monolithic
// unless constructed with WithShards, WithRemoteShards, or WithStore).
func (s *Service) Store() store.Store { return s.st }

// ShardHealth reports per-shard endpoint health when the store serves a
// remote topology (WithRemoteShards), or nil for in-process stores.
func (s *Service) ShardHealth() []store.ShardHealth {
	if hr, ok := s.st.(store.HealthReporter); ok {
		return hr.ShardHealthReport()
	}
	return nil
}

// Snapshot captures the current metrics.
func (s *Service) Snapshot() metrics.Snapshot { return s.reg.Snapshot() }

// Sigma returns the σ sessions are created with.
func (s *Service) Sigma() int { return s.opt.Sigma }

// Len returns the number of live sessions.
func (s *Service) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Create starts a new formulation session and returns its handle. The
// session is also addressable by id via Get until deleted or evicted.
func (s *Service) Create(ctx context.Context) (*Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("service: create: %w", err)
	}
	eng, err := core.NewWithStore(s.st, s.opt.Sigma)
	if err != nil {
		return nil, fmt.Errorf("service: create: %w", err)
	}
	eng.SetPool(s.pool)
	eng.SetCandidateCache(s.cache)
	eng.SetRunBudget(s.opt.ActionDeadline)
	eng.SetFilterChooser(s.opt.FilterMode)
	eng.SetFilterObserver(func(d core.FilterDecision) {
		switch d.Arm {
		case core.ArmGrafil:
			s.reg.Counter(metrics.CounterFilterArmGrafil).Inc()
		case core.ArmSignature:
			s.reg.Counter(metrics.CounterFilterArmSignature).Inc()
		default:
			s.reg.Counter(metrics.CounterFilterArmProbe).Inc()
		}
		if n := d.Candidates - d.Kept; n > 0 {
			s.reg.Counter(metrics.CounterFilterPruned).Add(int64(n))
		}
	})

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: create: %w", ErrServiceClosed)
	}
	if s.opt.MaxSessions > 0 && len(s.sessions) >= s.opt.MaxSessions {
		s.mu.Unlock()
		return nil, fmt.Errorf("service: create: %d live: %w", s.opt.MaxSessions, ErrTooManySessions)
	}
	s.nextID++
	ss := &Session{
		id:       fmt.Sprintf("s%06d", s.nextID),
		svc:      s,
		eng:      eng,
		lastUsed: s.clk.Now(),
	}
	s.sessions[ss.id] = ss
	s.mu.Unlock()

	s.reg.Counter(metrics.CounterSessionsCreated).Inc()
	s.reg.Counter(metrics.CounterSessionsActive).Inc()
	return ss, nil
}

// Get resolves a session id.
func (s *Service) Get(id string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("service: get %q: %w", id, ErrServiceClosed)
	}
	ss := s.sessions[id]
	if ss == nil {
		return nil, fmt.Errorf("service: get %q: %w", id, ErrSessionNotFound)
	}
	return ss, nil
}

// Delete removes a session. In-flight calls on the session finish; later
// calls fail with ErrSessionNotFound.
func (s *Service) Delete(id string) error {
	s.mu.Lock()
	ss := s.sessions[id]
	if ss == nil {
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return fmt.Errorf("service: delete %q: %w", id, ErrServiceClosed)
		}
		return fmt.Errorf("service: delete %q: %w", id, ErrSessionNotFound)
	}
	delete(s.sessions, id)
	s.mu.Unlock()

	ss.mu.Lock()
	ss.gone = true
	ss.mu.Unlock()
	s.reg.Counter(metrics.CounterSessionsDeleted).Inc()
	s.reg.Counter(metrics.CounterSessionsActive).Add(-1)
	return nil
}

// EvictIdle reaps sessions idle for longer than the TTL and returns how
// many it removed. The janitor calls this periodically; tests may call it
// directly. Sessions with a call in flight hold their own mutex and are
// skipped (they are, by definition, not idle).
func (s *Service) EvictIdle() int {
	ttl := s.opt.SessionTTL
	if ttl <= 0 {
		return 0
	}
	cutoff := s.clk.Now().Add(-ttl)
	s.mu.Lock()
	var evicted int
	for id, ss := range s.sessions {
		if !ss.mu.TryLock() {
			continue
		}
		if ss.lastUsed.Before(cutoff) {
			ss.gone = true
			delete(s.sessions, id)
			evicted++
		}
		ss.mu.Unlock()
	}
	s.mu.Unlock()
	if evicted > 0 {
		s.reg.Counter(metrics.CounterSessionsEvicted).Add(int64(evicted))
		s.reg.Counter(metrics.CounterSessionsActive).Add(-int64(evicted))
	}
	return evicted
}

func (s *Service) janitor(t clock.Ticker) {
	defer close(s.janitorDone)
	defer t.Stop()
	for {
		select {
		case <-s.stopJanitor:
			return
		case <-t.C():
			n := s.EvictIdle()
			if s.opt.janitorHook != nil {
				s.opt.janitorHook(n)
			}
		}
	}
}

// Session is one user's formulation session, multiplexed by a Service. All
// methods are safe for concurrent use; a per-session mutex serializes the
// formulation actions (the engine models a single user's canvas).
type Session struct {
	id  string
	svc *Service

	// pending counts this session's evaluating actions running or queued on
	// mu; the per-session admission bound reads it without the lock.
	pending atomic.Int64

	mu        sync.Mutex
	eng       *core.Engine
	lastUsed  time.Time
	gone      bool
	svcClosed bool            // gone because the whole service shut down
	lastRun   *trace.SpanData // finished span tree of the latest traced Run
}

// ID returns the service-unique session identifier.
func (ss *Session) ID() string { return ss.id }

// begin locks the session and checks liveness; callers must End (unlock).
// An action racing Close gets the typed ErrServiceClosed (the session is
// gone because the service is), never a stale-state access: the Close path
// marks every victim under its own mutex before tearing anything down.
func (ss *Session) begin() error {
	ss.mu.Lock()
	if ss.gone {
		closed := ss.svcClosed
		ss.mu.Unlock()
		if closed {
			return fmt.Errorf("service: session %s: %w", ss.id, ErrServiceClosed)
		}
		return fmt.Errorf("service: session %s: %w", ss.id, ErrSessionNotFound)
	}
	ss.lastUsed = ss.svc.clk.Now()
	return nil
}

// actionCtx instruments an evaluating action's context: the service's fault
// injector crosses over, and — when budget is true — the per-action
// deadline applies. The returned cancel must always be called.
func (ss *Session) actionCtx(ctx context.Context, budget bool) (context.Context, context.CancelFunc) {
	ctx = faultinject.With(ctx, ss.svc.opt.Injector)
	if budget {
		if d := ss.svc.opt.ActionDeadline; d > 0 {
			return context.WithTimeout(ctx, d)
		}
	}
	return ctx, func() {}
}

// AddNode drops a labeled node on the canvas and returns its stable id.
func (ss *Session) AddNode(label string) (int, error) {
	if err := ss.begin(); err != nil {
		return 0, err
	}
	defer ss.mu.Unlock()
	return ss.eng.AddNode(label), nil
}

// AddEdge draws an edge and returns what the engine precomputed during the
// step's latency window.
func (ss *Session) AddEdge(ctx context.Context, u, v int) (core.StepOutcome, error) {
	return ss.AddLabeledEdge(ctx, u, v, "")
}

// AddLabeledEdge is AddEdge for an edge carrying an edge label.
func (ss *Session) AddLabeledEdge(ctx context.Context, u, v int, label string) (core.StepOutcome, error) {
	release, err := ss.admit()
	if err != nil {
		return core.StepOutcome{}, err
	}
	defer release()
	if err := ss.begin(); err != nil {
		return core.StepOutcome{}, err
	}
	defer ss.mu.Unlock()
	actx, cancel := ss.actionCtx(ctx, true)
	defer cancel()
	tctx, sp := ss.svc.tracer.StartRoot(actx, trace.KindAddEdge)
	sp.SetAttr("session", ss.id)
	out, err := ss.eng.AddLabeledEdgeCtx(tctx, u, v, label)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		return core.StepOutcome{}, err
	}
	sp.SetAttr("status", out.Status.String())
	sp.Add("step", int64(out.Step))
	sp.End()
	ss.observeStep(out)
	return out, nil
}

// ChooseSimilarity resolves a pending empty-Rq choice by continuing as a
// similarity query.
func (ss *Session) ChooseSimilarity(ctx context.Context) (core.StepOutcome, error) {
	release, err := ss.admit()
	if err != nil {
		return core.StepOutcome{}, err
	}
	defer release()
	if err := ss.begin(); err != nil {
		return core.StepOutcome{}, err
	}
	defer ss.mu.Unlock()
	actx, cancel := ss.actionCtx(ctx, true)
	defer cancel()
	tctx, sp := ss.svc.tracer.StartRoot(actx, trace.KindChooseSim)
	sp.SetAttr("session", ss.id)
	out, err := ss.eng.ChooseSimilarityCtx(tctx)
	sp.End()
	return out, err
}

// DeleteEdge removes the edge drawn at the given step.
func (ss *Session) DeleteEdge(ctx context.Context, step int) (core.StepOutcome, error) {
	release, err := ss.admit()
	if err != nil {
		return core.StepOutcome{}, err
	}
	defer release()
	if err := ss.begin(); err != nil {
		return core.StepOutcome{}, err
	}
	defer ss.mu.Unlock()
	actx, cancel := ss.actionCtx(ctx, true)
	defer cancel()
	tctx, sp := ss.svc.tracer.StartRoot(actx, trace.KindDeleteEdge)
	sp.SetAttr("session", ss.id)
	sp.Add("step", int64(step))
	out, err := ss.eng.DeleteEdgeCtx(tctx, step)
	sp.End()
	if err != nil {
		return core.StepOutcome{}, err
	}
	st := ss.eng.Stats().ModificationTime
	if len(st) > 0 {
		ss.svc.reg.Histogram(metrics.HistModification).Observe(st[len(st)-1])
	}
	ss.svc.reg.Counter(metrics.CounterStepsEvaluated).Inc()
	return out, nil
}

// SuggestDeletion recommends which edge to delete when Rq is empty.
func (ss *Session) SuggestDeletion() (core.Suggestion, error) {
	if err := ss.begin(); err != nil {
		return core.Suggestion{}, err
	}
	defer ss.mu.Unlock()
	return ss.eng.SuggestDeletion()
}

// Run executes the query and returns the ranked results. Unlike the bare
// engine, a session that is awaiting the Modify-or-SimQuery choice refuses
// with ErrAwaitingChoice — the front-end must resolve the choice (or let
// ChooseSimilarity decide) before running. On cancellation Run returns
// promptly with the partial ranking and an error wrapping ctx.Err().
func (ss *Session) Run(ctx context.Context) ([]core.Result, error) {
	out, err := ss.RunDetailed(ctx)
	return out.Results, err
}

// RunDetailed is Run reporting the full ladder outcome: the results plus
// the Truncated flag, the degradation stage, and the fault count. With an
// action deadline configured, an admitted Run answers within roughly the
// budget — degraded and flagged rather than late or wrong.
func (ss *Session) RunDetailed(ctx context.Context) (core.RunOutcome, error) {
	release, err := ss.admit()
	if err != nil {
		return core.RunOutcome{}, err
	}
	defer release()
	if err := ss.begin(); err != nil {
		return core.RunOutcome{}, err
	}
	defer ss.mu.Unlock()
	if ss.eng.AwaitingChoice() {
		return core.RunOutcome{}, fmt.Errorf("service: session %s: run: %w", ss.id, core.ErrAwaitingChoice)
	}
	actx, cancel := ss.actionCtx(ctx, false) // Run's budget is the engine ladder's
	defer cancel()
	tctx, sp := ss.svc.tracer.StartRoot(actx, trace.KindRun)
	sp.SetAttr("session", ss.id)
	out, err := ss.eng.RunDetailedCtx(tctx)
	sp.Add("results", int64(len(out.Results)))
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	if sp != nil {
		// Slow-journal self-explanation: which prefilter arm served this Run
		// and which store epoch it was pinned to travel with the span tree,
		// so a journaled slow Run carries its own "why" without a separate
		// lookup against state that may have moved on.
		sp.SetAttr("filter", ss.eng.FilterExplain())
		sp.SetAttr("epoch", strconv.FormatUint(out.Epoch, 10))
	}
	sp.End()
	if d := sp.Data(); d != nil {
		ss.lastRun = d
	}
	ss.observeRun(out, err)
	if err != nil {
		return out, err
	}
	srt := ss.eng.Stats().RunTime
	ss.svc.reg.Counter(metrics.CounterRuns).Inc()
	ss.svc.reg.Histogram(metrics.HistSRT).Observe(srt)
	ss.svc.col.ObservePhase(slo.PhaseSRT, srt)
	ss.svc.col.ObserveStage(stageOf(out), srt)
	return out, nil
}

// observeRun records the ladder outcome: the per-stage counter family (a
// histogram over the ladder's discrete stages), truncations, dropped
// checks, and exhausted budgets. Caller holds ss.mu.
func (ss *Session) observeRun(out core.RunOutcome, err error) {
	reg := ss.svc.reg
	if errors.Is(err, core.ErrBudgetExhausted) {
		reg.Counter(metrics.CounterBudgetExhausted).Inc()
	}
	if err != nil {
		return
	}
	switch out.Stage {
	case core.StagePartial:
		reg.Counter(metrics.CounterDegradePartial).Inc()
	case core.StageSimilarity:
		reg.Counter(metrics.CounterDegradeSimilar).Inc()
	case core.StageCachedGood:
		reg.Counter(metrics.CounterDegradeCached).Inc()
	default:
		reg.Counter(metrics.CounterDegradeFull).Inc()
	}
	if out.Truncated {
		reg.Counter(metrics.CounterRunsTruncated).Inc()
	}
	if out.Faults > 0 {
		reg.Counter(metrics.CounterVerifyFaultTotal).Add(out.Faults)
	}
}

// TraceReport returns the SRT breakdown of the session's most recent traced
// Run: per-phase durations, candidates verified vs. pruned, and candidate-
// cache effectiveness. It fails with ErrNoTrace until a Run has executed
// with tracing enabled (WithTracing).
func (ss *Session) TraceReport() (trace.RunReport, error) {
	if err := ss.begin(); err != nil {
		return trace.RunReport{}, err
	}
	defer ss.mu.Unlock()
	if ss.lastRun == nil {
		return trace.RunReport{}, fmt.Errorf("service: session %s: %w (enable WithTracing and Run first)", ss.id, ErrNoTrace)
	}
	return trace.BuildReport(ss.lastRun), nil
}

// LastRunTrace returns the raw span tree of the most recent traced Run, or
// ErrNoTrace. The tree is finished and must not be mutated.
func (ss *Session) LastRunTrace() (*trace.SpanData, error) {
	if err := ss.begin(); err != nil {
		return nil, err
	}
	defer ss.mu.Unlock()
	if ss.lastRun == nil {
		return nil, fmt.Errorf("service: session %s: %w (enable WithTracing and Run first)", ss.id, ErrNoTrace)
	}
	return ss.lastRun, nil
}

// Explain reports how one data graph matches the current query.
func (ss *Session) Explain(graphID int) (*core.Match, error) {
	if err := ss.begin(); err != nil {
		return nil, err
	}
	defer ss.mu.Unlock()
	return ss.eng.Explain(graphID)
}

// Info is a point-in-time description of a session's formulation state.
type Info struct {
	ID             string
	QuerySize      int
	Steps          []int
	SimilarityMode bool
	AwaitingChoice bool
	ExactCount     int // |Rq| (containment mode)
	FreeCount      int // |Rfree| (similarity mode)
	VerCount       int // |Rver| (similarity mode)
	TotalCount     int // |Rfree ∪ Rver|
	SRT            time.Duration
}

// Describe snapshots the session state for status displays.
func (ss *Session) Describe() (Info, error) {
	if err := ss.begin(); err != nil {
		return Info{}, err
	}
	defer ss.mu.Unlock()
	free, ver, total := ss.eng.CandidateCounts()
	return Info{
		ID:             ss.id,
		QuerySize:      ss.eng.Query().Size(),
		Steps:          ss.eng.Query().Steps(),
		SimilarityMode: ss.eng.SimilarityMode(),
		AwaitingChoice: ss.eng.AwaitingChoice(),
		ExactCount:     len(ss.eng.Rq()),
		FreeCount:      free,
		VerCount:       ver,
		TotalCount:     total,
		SRT:            ss.eng.Stats().RunTime,
	}, nil
}

// QueryGraph snapshots the session's current query as a graph (nil when no
// edge is drawn yet). Oracles and differential harnesses use it to compute
// ground truth for exactly the query the session holds.
func (ss *Session) QueryGraph() (*graph.Graph, error) {
	if err := ss.begin(); err != nil {
		return nil, err
	}
	defer ss.mu.Unlock()
	if ss.eng.Query().Size() == 0 {
		return nil, nil
	}
	qg, _ := ss.eng.Query().Graph()
	return qg, nil
}

// SpigDump renders the session's SPIG set (debugging).
func (ss *Session) SpigDump() (string, error) {
	if err := ss.begin(); err != nil {
		return "", err
	}
	defer ss.mu.Unlock()
	return ss.eng.Spigs().Dump(), nil
}

// observeStep records one formulation step's measurements. Caller holds
// ss.mu.
func (ss *Session) observeStep(out core.StepOutcome) {
	reg := ss.svc.reg
	reg.Counter(metrics.CounterStepsEvaluated).Inc()
	reg.Histogram(metrics.HistSpigBuild).Observe(out.SpigTime)
	reg.Histogram(metrics.HistStepEval).Observe(out.EvalTime)
	ss.svc.col.ObservePhase(slo.PhaseSpigBuild, out.SpigTime)
}
