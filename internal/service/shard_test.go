package service

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"prague/internal/metrics"
	"prague/internal/store"
)

// TestWithShards runs a small session fleet against a 4-way sharded service
// and checks the topology gauges and the store accessor. Result correctness
// across layouts is difftest's job; this pins the service wiring.
func TestWithShards(t *testing.T) {
	db, idx := smallFixture(t)
	reg := metrics.NewRegistry()
	svc, err := New(db, idx,
		WithShards(4), WithSigma(2), WithSessionTTL(0), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	st := svc.Store()
	if st.NumShards() != 4 {
		t.Fatalf("NumShards = %d", st.NumShards())
	}
	if got := reg.Counter(metrics.CounterShardCount).Value(); got != 4 {
		t.Errorf("shard_count gauge = %d", got)
	}
	minG := reg.Counter(metrics.CounterShardGraphsMin).Value()
	maxG := reg.Counter(metrics.CounterShardGraphsMax).Value()
	if minG <= 0 || maxG < minG || maxG > int64(len(db)) {
		t.Errorf("shard graph gauges min=%d max=%d (db %d)", minG, maxG, len(db))
	}

	ctx := context.Background()
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 6; i++ {
		if err := formulateAndRun(ctx, svc, r); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
}

// TestWithStore injects a pre-built store and checks it is served as-is;
// a monolithic default service reports one shard.
func TestWithStore(t *testing.T) {
	db, idx := smallFixture(t)
	pre, err := store.NewSharded(db, idx, 3)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(nil, nil, WithStore(pre), WithSessionTTL(0))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Store() != pre {
		t.Error("injected store not served")
	}

	mono, err := New(db, idx, WithSessionTTL(0))
	if err != nil {
		t.Fatal(err)
	}
	defer mono.Close()
	if mono.Store().NumShards() != 1 {
		t.Errorf("default store has %d shards", mono.Store().NumShards())
	}
	if _, err := New(nil, idx); !errors.Is(err, store.ErrEmptyDatabase) {
		t.Errorf("New(empty db) = %v, want ErrEmptyDatabase", err)
	}
	for _, n := range []int{0, -2} {
		s, err := New(db, idx, WithShards(n), WithSessionTTL(0))
		if err != nil {
			t.Errorf("WithShards(%d) should fall back to monolithic, got %v", n, err)
			continue
		}
		if s.Store().NumShards() != 1 {
			t.Errorf("WithShards(%d) produced %d shards", n, s.Store().NumShards())
		}
		s.Close()
	}
}
