package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"prague/internal/clock"
	"prague/internal/core"
	"prague/internal/graph"
	"prague/internal/index"
	"prague/internal/metrics"
	"prague/internal/mining"
)

// buildFixture hand-builds a random connected molecule-like database and
// mines its action-aware indexes.
func buildFixture(tb testing.TB, n int, seed int64, alpha float64, maxFrag int) ([]*graph.Graph, *index.Set) {
	tb.Helper()
	r := rand.New(rand.NewSource(seed))
	labels := []string{"C", "C", "C", "C", "N", "O", "S"}
	var db []*graph.Graph
	for i := 0; i < n; i++ {
		nodes := 4 + r.Intn(6)
		g := graph.New(i)
		for v := 0; v < nodes; v++ {
			g.AddNode(labels[r.Intn(len(labels))])
		}
		for v := 1; v < nodes; v++ {
			g.MustAddEdge(v, r.Intn(v))
		}
		for k := 0; k < r.Intn(3); k++ {
			u, v := r.Intn(nodes), r.Intn(nodes)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		db = append(db, g)
	}
	// One graph carries the rare label P, bonded only to C: the pair P-P is
	// then in the vocabulary with zero support, so a P-P query edge
	// deterministically empties Rq (the awaiting-choice scenario).
	rare := graph.New(n)
	rare.AddNode("C")
	rare.AddNode("P")
	rare.MustAddEdge(0, 1)
	db = append(db, rare)
	res, err := mining.Mine(db, mining.Options{MinSupportRatio: alpha, MaxSize: maxFrag, IncludeZeroSupportPairs: true})
	if err != nil {
		tb.Fatal(err)
	}
	idx, err := index.Build(res, alpha, 3)
	if err != nil {
		tb.Fatal(err)
	}
	return db, idx
}

var (
	smallOnce sync.Once
	smallDB   []*graph.Graph
	smallIdx  *index.Set
)

func smallFixture(tb testing.TB) ([]*graph.Graph, *index.Set) {
	smallOnce.Do(func() {
		smallDB, smallIdx = buildFixture(tb, 150, 17, 0.3, 8)
	})
	return smallDB, smallIdx
}

// formulateAndRun drives one full session through the service: a short
// random connected query, similarity choice when prompted, then Run.
func formulateAndRun(ctx context.Context, svc *Service, r *rand.Rand) error {
	ss, err := svc.Create(ctx)
	if err != nil {
		return err
	}
	defer svc.Delete(ss.ID())

	labels := []string{"C", "N", "O"}
	var ids []int
	for i := 0; i < 4; i++ {
		id, err := ss.AddNode(labels[r.Intn(len(labels))])
		if err != nil {
			return err
		}
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		out, err := ss.AddEdge(ctx, ids[r.Intn(i)], ids[i])
		if err != nil {
			return err
		}
		if out.NeedsChoice {
			if _, err := ss.ChooseSimilarity(ctx); err != nil {
				return err
			}
		}
	}
	if _, err := ss.Run(ctx); err != nil {
		return err
	}
	info, err := ss.Describe()
	if err != nil {
		return err
	}
	if info.QuerySize != 3 {
		return fmt.Errorf("session %s: query size %d after 3 edges", ss.ID(), info.QuerySize)
	}
	return nil
}

// TestConcurrentSessions is the -race stress test: many goroutines create,
// step, run, and delete overlapping sessions against one shared Service
// with a shared verification pool.
func TestConcurrentSessions(t *testing.T) {
	db, idx := smallFixture(t)
	reg := metrics.NewRegistry()
	svc, err := New(db, idx, WithSigma(2), WithVerifyWorkers(4), WithMetrics(reg), WithSessionTTL(0))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const goroutines = 12
	const sessionsPerGoroutine = 6
	errCh := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < sessionsPerGoroutine; i++ {
				if err := formulateAndRun(context.Background(), svc, r); err != nil {
					errCh <- fmt.Errorf("goroutine %d session %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if n := svc.Len(); n != 0 {
		t.Fatalf("%d sessions leaked after deletes", n)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[metrics.CounterSessionsCreated]; got != goroutines*sessionsPerGoroutine {
		t.Fatalf("sessions_created = %d, want %d", got, goroutines*sessionsPerGoroutine)
	}
	if snap.Counters[metrics.CounterSessionsActive] != 0 {
		t.Fatalf("sessions_active = %d, want 0", snap.Counters[metrics.CounterSessionsActive])
	}
	if snap.Counters[metrics.CounterStepsEvaluated] == 0 {
		t.Fatal("steps_evaluated stayed zero")
	}
	if snap.Histograms[metrics.HistSRT].Count != goroutines*sessionsPerGoroutine {
		t.Fatalf("srt histogram count = %d", snap.Histograms[metrics.HistSRT].Count)
	}
}

// TestSharedSessionConcurrentUse hammers a single session from several
// goroutines: the per-session mutex must serialize the canvas safely.
func TestSharedSessionConcurrentUse(t *testing.T) {
	db, idx := smallFixture(t)
	svc, err := New(db, idx, WithSigma(2), WithMetrics(metrics.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ss, err := svc.Create(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ss.AddNode("C")
	b, _ := ss.AddNode("C")
	if out, err := ss.AddEdge(context.Background(), a, b); err != nil {
		t.Fatal(err)
	} else if out.NeedsChoice {
		ss.ChooseSimilarity(context.Background())
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := ss.Run(context.Background()); err != nil && !errors.Is(err, core.ErrAwaitingChoice) {
					t.Error(err)
					return
				}
				if _, err := ss.Describe(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestSessionLifecycleAndSentinels(t *testing.T) {
	db, idx := smallFixture(t)
	reg := metrics.NewRegistry()
	svc, err := New(db, idx, WithSigma(1), WithMaxSessions(2), WithMetrics(reg), WithSessionTTL(0))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()

	s1, err := svc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := svc.Get(s1.ID()); err != nil || got != s1 {
		t.Fatalf("Get(%q) = %v, %v", s1.ID(), got, err)
	}
	if _, err := svc.Get("nope"); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("Get unknown id: %v", err)
	}

	// Session limit.
	if _, err := svc.Create(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Create(ctx); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("over limit: %v", err)
	}

	// Run on an empty query surfaces core's sentinel.
	if _, err := s1.Run(ctx); !errors.Is(err, core.ErrEmptyQuery) {
		t.Fatalf("run empty: %v", err)
	}

	// Delete, then every session method refuses.
	if err := svc.Delete(s1.ID()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Delete(s1.ID()); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := s1.AddNode("C"); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("AddNode on deleted session: %v", err)
	}
	if _, err := s1.Run(ctx); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("Run on deleted session: %v", err)
	}

	svc.Close()
	if _, err := svc.Create(ctx); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("create after close: %v", err)
	}
	if _, err := svc.Get("s000001"); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("get after close: %v", err)
	}
}

func TestRunRefusesWhileAwaitingChoice(t *testing.T) {
	db, idx := smallFixture(t)
	svc, err := New(db, idx, WithSigma(2), WithMetrics(metrics.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()

	// The fixture guarantees P-P is a zero-support vocabulary pair, so this
	// edge deterministically empties Rq and demands the choice.
	ss, err := svc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ss.AddNode("P")
	b, _ := ss.AddNode("P")
	out, err := ss.AddEdge(ctx, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !out.NeedsChoice {
		t.Fatal("P-P edge did not empty Rq; fixture invariant broken")
	}
	if _, err := ss.Run(ctx); !errors.Is(err, core.ErrAwaitingChoice) {
		t.Fatalf("run while awaiting choice: err = %v, want ErrAwaitingChoice", err)
	}
	if _, err := ss.ChooseSimilarity(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Run(ctx); err != nil {
		t.Fatalf("run after choice: %v", err)
	}
}

// TestIdleEviction drives the janitor itself through a fake clock: ticks
// fire only when the test advances time, and the janitor hook reports every
// sweep, so the test is deterministic under -race with no sleeps.
func TestIdleEviction(t *testing.T) {
	db, idx := smallFixture(t)
	reg := metrics.NewRegistry()
	fake := clock.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	sweeps := make(chan int, 64)
	svc, err := New(db, idx, WithSigma(1), WithSessionTTL(time.Minute), WithMetrics(reg),
		WithClock(fake), withJanitorHook(func(n int) { sweeps <- n }))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()

	idle, err := svc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}
	busy, err := svc.Create(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Half a TTL passes; only the busy session is touched. Any janitor sweep
	// at this instant finds nobody stale.
	fake.Advance(45 * time.Second)
	if _, err := busy.AddNode("C"); err != nil {
		t.Fatal(err)
	}

	// Now 90s have passed for the idle session (past the 60s TTL) and 45s
	// for the busy one (within it). Every sweep from here on evicts exactly
	// the idle session, once.
	fake.Advance(45 * time.Second)
	deadline := time.After(10 * time.Second)
	evicted := 0
	for evicted < 1 {
		select {
		case n := <-sweeps:
			evicted += n
		case <-deadline:
			t.Fatal("janitor never evicted the idle session")
		}
	}
	if evicted != 1 {
		t.Fatalf("janitor evicted %d sessions, want 1", evicted)
	}
	if _, err := svc.Get(idle.ID()); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("idle session still resolvable: %v", err)
	}
	if _, err := idle.AddNode("C"); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("evicted session still usable: %v", err)
	}
	if _, err := svc.Get(busy.ID()); err != nil {
		t.Fatalf("busy session evicted: %v", err)
	}
	if got := reg.Snapshot().Counters[metrics.CounterSessionsEvicted]; got != 1 {
		t.Fatalf("sessions_evicted = %d, want 1", got)
	}
}

// TestEvictIdleDirect covers EvictIdle's TTL guard: with eviction disabled
// (TTL ≤ 0, no janitor), an explicit call is a no-op however stale the
// sessions are.
func TestEvictIdleDirect(t *testing.T) {
	db, idx := smallFixture(t)
	fake := clock.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	// TTL 0 disables the janitor goroutine entirely; EvictIdle then reports
	// 0 regardless of idleness.
	svc, err := New(db, idx, WithSigma(1), WithSessionTTL(0), WithMetrics(metrics.NewRegistry()), WithClock(fake))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Create(context.Background()); err != nil {
		t.Fatal(err)
	}
	fake.Advance(24 * time.Hour)
	if n := svc.EvictIdle(); n != 0 {
		t.Fatalf("EvictIdle with TTL disabled evicted %d, want 0", n)
	}
	if svc.Len() != 1 {
		t.Fatalf("session count = %d, want 1", svc.Len())
	}
}

// TestRunCancellationMidVerification is the acceptance test for context
// plumbing: on a large synthetic database, cancelling RunCtx while the
// verification fan-out is in flight must return promptly with a wrapped
// context.Canceled, and a short deadline must return a wrapped
// context.DeadlineExceeded — partial results, not hangs.
func TestRunCancellationMidVerification(t *testing.T) {
	if testing.Short() {
		t.Skip("large fixture")
	}
	db, idx := buildFixture(t, 16_000, 23, 0.3, 6)
	// Caching and the verify prefilter are disabled: a second session's run
	// must hit live verification of the full candidate set for there to be
	// anything to cancel (a cached or heavily pruned run finishes before the
	// cancel can land).
	svc, err := New(db, idx, WithSigma(4), WithVerifyWorkers(4), WithMetrics(metrics.NewRegistry()),
		WithSessionTTL(0), WithCandidateCache(0), WithFilterChooser(core.FilterProbe))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	formulate := func(ctx context.Context) *Session {
		t.Helper()
		ss, err := svc.Create(ctx)
		if err != nil {
			t.Fatal(err)
		}
		labels := []string{"C", "C", "N", "O"}
		var ids []int
		for _, l := range labels {
			id, err := ss.AddNode(l)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for i := 1; i < len(ids); i++ {
			out, err := ss.AddEdge(ctx, ids[i-1], ids[i])
			if err != nil {
				t.Fatal(err)
			}
			if out.NeedsChoice {
				if _, err := ss.ChooseSimilarity(ctx); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Force similarity mode: with σ ≥ |q| every graph is admitted, so
		// Run must grind through the whole database's verification.
		if _, err := ss.ChooseSimilarity(ctx); err != nil {
			t.Fatal(err)
		}
		return ss
	}

	// Baseline: uncancelled Run, to prove the cancel lands mid-flight.
	base := formulate(context.Background())
	t0 := time.Now()
	results, err := base.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	baseline := time.Since(t0)
	t.Logf("baseline SRT %v over %d graphs", baseline, len(db))
	if len(results) != len(db) {
		t.Fatalf("baseline run: %d results, want %d (σ ≥ |q|)", len(results), len(db))
	}
	if baseline < 5*time.Millisecond {
		t.Fatalf("fixture too small for a meaningful cancellation test: baseline run %v", baseline)
	}

	// Explicit cancel landing mid-verification.
	ss := formulate(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(baseline/8, cancel)
	t0 = time.Now()
	_, err = ss.Run(ctx)
	elapsed := time.Since(t0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v, want wrapped context.Canceled", err)
	}
	if elapsed > baseline/2+time.Second {
		t.Fatalf("cancelled run took %v (baseline %v): not prompt", elapsed, baseline)
	}

	// Deadline exceeded mid-verification.
	ss2 := formulate(context.Background())
	dctx, dcancel := context.WithTimeout(context.Background(), baseline/8)
	defer dcancel()
	t0 = time.Now()
	_, err = ss2.Run(dctx)
	elapsed = time.Since(t0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline run: err = %v, want wrapped context.DeadlineExceeded", err)
	}
	if elapsed > baseline/2+time.Second {
		t.Fatalf("deadline run took %v (baseline %v): not prompt", elapsed, baseline)
	}

	// The session remains usable after an aborted Run.
	if _, err := ss.Run(context.Background()); err != nil {
		t.Fatalf("run after cancellation: %v", err)
	}
}

// TestCandidateCacheSharedAcrossSessions: a second session formulating the
// same query is served from the cache entries the first one published, with
// identical results and visible candcache_* metrics.
func TestCandidateCacheSharedAcrossSessions(t *testing.T) {
	db, idx := smallFixture(t)
	reg := metrics.NewRegistry()
	svc, err := New(db, idx, WithSigma(2), WithMetrics(reg), WithSessionTTL(0))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.CandidateCache() == nil {
		t.Fatal("cache not created by default")
	}
	ctx := context.Background()

	// Rare labels keep the query fragment out of the frequent index (a
	// frequent target is answered verification-free, bypassing the cache).
	formulateAndQuery := func() []core.Result {
		t.Helper()
		ss, err := svc.Create(ctx)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := ss.AddNode("S")
		b, _ := ss.AddNode("O")
		cc, _ := ss.AddNode("N")
		for _, e := range [][2]int{{a, b}, {b, cc}} {
			out, err := ss.AddEdge(ctx, e[0], e[1])
			if err != nil {
				t.Fatal(err)
			}
			if out.NeedsChoice {
				if _, err := ss.ChooseSimilarity(ctx); err != nil {
					t.Fatal(err)
				}
			}
		}
		res, err := ss.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := formulateAndQuery()
	afterFirst := svc.CandidateCache().Stats()
	if afterFirst.Misses == 0 {
		t.Fatal("first session never reached the cache")
	}
	second := formulateAndQuery()
	afterSecond := svc.CandidateCache().Stats()

	if len(first) != len(second) {
		t.Fatalf("result sizes differ across sessions: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, first[i], second[i])
		}
	}
	if afterSecond.Hits+afterSecond.Coalesced <= afterFirst.Hits+afterFirst.Coalesced {
		t.Fatalf("second identical session produced no cache reuse: %+v -> %+v", afterFirst, afterSecond)
	}
	snap := reg.Snapshot().Counters
	for _, name := range []string{metrics.CounterCandHits, metrics.CounterCandMisses, metrics.CounterCandEntries, metrics.CounterCandBytes} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("counter %s missing from the registry snapshot", name)
		}
	}
	if svc.CandidateCache().SizeBytes() != afterSecond.Bytes {
		t.Fatalf("bytes gauge %d != SizeBytes %d", afterSecond.Bytes, svc.CandidateCache().SizeBytes())
	}
}

// TestCandidateCacheDisabled: WithCandidateCache(0) turns the cache off and
// sessions still answer correctly (nil-cache paths).
func TestCandidateCacheDisabled(t *testing.T) {
	db, idx := smallFixture(t)
	svc, err := New(db, idx, WithSigma(1), WithMetrics(metrics.NewRegistry()), WithSessionTTL(0), WithCandidateCache(0))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.CandidateCache() != nil {
		t.Fatal("cache present despite WithCandidateCache(0)")
	}
	ss, err := svc.Create(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ss.AddNode("C")
	b, _ := ss.AddNode("N")
	out, err := ss.AddEdge(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.NeedsChoice {
		if _, err := ss.ChooseSimilarity(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ss.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}
