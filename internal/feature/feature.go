// Package feature provides the feature-based filtering substrate shared by
// the traditional-paradigm similarity baselines the paper compares against
// (Grafil [12], SIGMA [8], DistVP [11]): a set of small structural features
// with per-data-graph embedding counts and containment identifier lists.
package feature

import (
	"fmt"
	"sort"

	"prague/internal/graph"
	"prague/internal/mining"
)

// Index holds the feature set and the feature-graph count matrix.
type Index struct {
	Features []*graph.Graph
	Codes    []string
	ByCode   map[string]int
	// Counts[g][f] = number of embeddings of feature f in data graph g,
	// capped at CountCap (Grafil-style occurrence counting).
	Counts   [][]uint16
	CountCap int
	MaxSize  int
}

// Options configures feature selection.
type Options struct {
	// MaxFeatureSize bounds feature size in edges (Grafil and SIGMA use
	// small features; default 3).
	MaxFeatureSize int
	// CountCap caps per-graph embedding counts (default 64); counting
	// embeddings exactly in dense graphs is wasted work for a filter.
	CountCap int
}

// Build selects features from the mined frequent fragments (all frequent
// fragments up to MaxFeatureSize, plus every single-edge label pair seen in
// the database so rare edges still discriminate) and counts their embeddings
// in every data graph.
func Build(db []*graph.Graph, mined *mining.Result, opt Options) (*Index, error) {
	if len(db) == 0 {
		return nil, fmt.Errorf("feature: empty database")
	}
	maxSize := opt.MaxFeatureSize
	if maxSize == 0 {
		maxSize = 3
	}
	cap16 := opt.CountCap
	if cap16 == 0 {
		cap16 = 64
	}
	if cap16 > 65535 {
		return nil, fmt.Errorf("feature: CountCap %d exceeds uint16", cap16)
	}

	idx := &Index{ByCode: map[string]int{}, CountCap: cap16, MaxSize: maxSize}
	add := func(g *graph.Graph, code string) {
		if _, ok := idx.ByCode[code]; ok {
			return
		}
		idx.ByCode[code] = len(idx.Features)
		idx.Features = append(idx.Features, g)
		idx.Codes = append(idx.Codes, code)
	}
	for _, f := range mined.Frequent {
		if f.Size() <= maxSize {
			add(f.Graph, f.Code)
		}
	}
	// Single-edge label triples present in the data but infrequent.
	seen := map[string]*graph.Graph{}
	for _, g := range db {
		for i, e := range g.Edges() {
			la, lb := g.LabelPair(e)
			eg := graph.New(-1)
			eg.AddNode(la)
			eg.AddNode(lb)
			if err := eg.AddLabeledEdge(0, 1, g.EdgeLabelAt(i)); err != nil {
				return nil, err
			}
			code := graph.CanonicalCode(eg)
			if _, ok := seen[code]; !ok {
				seen[code] = eg
			}
		}
	}
	var codes []string
	for code := range seen {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		add(seen[code], code)
	}

	idx.Counts = make([][]uint16, len(db))
	for gi, g := range db {
		row := make([]uint16, len(idx.Features))
		for fi, f := range idx.Features {
			row[fi] = uint16(graph.CountEmbeddings(f, g, cap16))
		}
		idx.Counts[gi] = row
	}
	return idx, nil
}

// NumFeatures returns the feature count.
func (x *Index) NumFeatures() int { return len(x.Features) }

// Count returns the (capped) embedding count of feature f in graph g.
func (x *Index) Count(g, f int) int { return int(x.Counts[g][f]) }

// ContainmentIds returns the sorted ids of data graphs containing feature f.
func (x *Index) ContainmentIds(f int) []int {
	var ids []int
	for g := range x.Counts {
		if x.Counts[g][f] > 0 {
			ids = append(ids, g)
		}
	}
	return ids
}

// QueryProfile describes a query with respect to the feature set: per
// feature, the embedding count in the query, and per query edge, how many
// embeddings of each feature cover it (the edge-feature matrix of Grafil).
type QueryProfile struct {
	Query      *graph.Graph
	Counts     []int   // feature -> count in query
	EdgeCover  [][]int // query edge index -> feature -> embeddings covering it
	ActiveFeat []int   // features with Counts > 0
}

// Profile computes the query's feature profile. Embeddings are enumerated
// exactly (queries are small).
func (x *Index) Profile(q *graph.Graph) *QueryProfile {
	p := &QueryProfile{
		Query:     q,
		Counts:    make([]int, len(x.Features)),
		EdgeCover: make([][]int, q.NumEdges()),
	}
	for e := range p.EdgeCover {
		p.EdgeCover[e] = make([]int, len(x.Features))
	}
	edgeIdx := map[graph.Edge]int{}
	for i, e := range q.Edges() {
		edgeIdx[e] = i
	}
	for fi, f := range x.Features {
		embeddings := enumerateEmbeddings(f, q, 0)
		p.Counts[fi] = len(embeddings)
		if len(embeddings) > 0 {
			p.ActiveFeat = append(p.ActiveFeat, fi)
		}
		for _, m := range embeddings {
			for _, fe := range f.Edges() {
				qe := normEdge(m[fe.U], m[fe.V])
				p.EdgeCover[edgeIdx[qe]][fi]++
			}
		}
	}
	return p
}

// enumerateEmbeddings lists up to limit embeddings of f into g as node maps.
func enumerateEmbeddings(f, g *graph.Graph, limit int) [][]int {
	var out [][]int
	graph.ForEachEmbedding(f, g, func(core []int) bool {
		out = append(out, append([]int(nil), core...))
		return limit > 0 && len(out) >= limit
	})
	return out
}

func normEdge(u, v int) graph.Edge {
	if u > v {
		u, v = v, u
	}
	return graph.Edge{U: u, V: v}
}
