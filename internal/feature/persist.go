package feature

import (
	"encoding/gob"
	"fmt"
	"os"

	"prague/internal/graph"
)

// Persistence for the baseline feature index: building the count matrix is
// the expensive part of the GR/SG setup (one VF2 count per graph × feature),
// so experiment reruns load it from disk.

type wireIndex struct {
	Features []*graph.Graph
	Codes    []string
	Counts   [][]uint16
	CountCap int
	MaxSize  int
}

// Save writes the index to path with gob encoding.
func (x *Index) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := wireIndex{
		Features: x.Features, Codes: x.Codes, Counts: x.Counts,
		CountCap: x.CountCap, MaxSize: x.MaxSize,
	}
	if err := gob.NewEncoder(f).Encode(w); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads an index written by Save.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var w wireIndex
	if err := gob.NewDecoder(f).Decode(&w); err != nil {
		return nil, err
	}
	if len(w.Features) != len(w.Codes) {
		return nil, fmt.Errorf("feature: corrupt index: %d features, %d codes", len(w.Features), len(w.Codes))
	}
	x := &Index{
		Features: w.Features, Codes: w.Codes, Counts: w.Counts,
		CountCap: w.CountCap, MaxSize: w.MaxSize,
		ByCode: make(map[string]int, len(w.Codes)),
	}
	for i, code := range w.Codes {
		x.ByCode[code] = i
	}
	return x, nil
}
