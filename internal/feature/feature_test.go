package feature

import (
	"math/rand"
	"testing"

	"prague/internal/graph"
	"prague/internal/mining"
)

func fixtureDB(seed int64, n int) []*graph.Graph {
	r := rand.New(rand.NewSource(seed))
	labels := []string{"C", "C", "C", "N", "O"}
	var db []*graph.Graph
	for i := 0; i < n; i++ {
		nodes := 4 + r.Intn(5)
		g := graph.New(i)
		for v := 0; v < nodes; v++ {
			g.AddNode(labels[r.Intn(len(labels))])
		}
		for v := 1; v < nodes; v++ {
			g.MustAddEdge(v, r.Intn(v))
		}
		for k := 0; k < r.Intn(2); k++ {
			u, v := r.Intn(nodes), r.Intn(nodes)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		db = append(db, g)
	}
	return db
}

func buildIndex(t *testing.T, db []*graph.Graph) *Index {
	t.Helper()
	res, err := mining.Mine(db, mining.Options{MinSupportRatio: 0.2, MaxSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(db, res, Options{MaxFeatureSize: 3, CountCap: 32})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestBuildValidation(t *testing.T) {
	db := fixtureDB(1, 5)
	res, err := mining.Mine(db, mining.Options{MinSupportRatio: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(nil, res, Options{}); err == nil {
		t.Error("empty database accepted")
	}
	if _, err := Build(db, res, Options{CountCap: 1 << 20}); err == nil {
		t.Error("oversized CountCap accepted")
	}
}

func TestCountsMatchVF2(t *testing.T) {
	db := fixtureDB(2, 15)
	idx := buildIndex(t, db)
	if idx.NumFeatures() == 0 {
		t.Fatal("no features selected")
	}
	for gi, g := range db {
		for fi, f := range idx.Features {
			want := graph.CountEmbeddings(f, g, idx.CountCap)
			if got := idx.Count(gi, fi); got != want {
				t.Fatalf("graph %d feature %d: count %d, want %d", gi, fi, got, want)
			}
		}
	}
}

func TestFeatureSizeBound(t *testing.T) {
	db := fixtureDB(3, 15)
	idx := buildIndex(t, db)
	for _, f := range idx.Features {
		if f.Size() > idx.MaxSize {
			t.Errorf("feature of size %d exceeds bound %d", f.Size(), idx.MaxSize)
		}
	}
}

func TestAllEdgePairsCovered(t *testing.T) {
	db := fixtureDB(4, 15)
	idx := buildIndex(t, db)
	for _, g := range db {
		for _, e := range g.Edges() {
			la, lb := g.LabelPair(e)
			eg := graph.New(-1)
			eg.AddNode(la)
			eg.AddNode(lb)
			eg.MustAddEdge(0, 1)
			if _, ok := idx.ByCode[graph.CanonicalCode(eg)]; !ok {
				t.Fatalf("label pair %s-%s not a feature", la, lb)
			}
		}
	}
}

func TestContainmentIds(t *testing.T) {
	db := fixtureDB(5, 15)
	idx := buildIndex(t, db)
	for fi, f := range idx.Features {
		ids := idx.ContainmentIds(fi)
		set := map[int]bool{}
		for _, id := range ids {
			set[id] = true
		}
		for gid, g := range db {
			if got, want := set[gid], graph.SubgraphIsomorphic(f, g); got != want {
				t.Fatalf("feature %d graph %d: containment %v, want %v", fi, gid, got, want)
			}
		}
	}
}

func TestProfileEdgeCoverConsistency(t *testing.T) {
	db := fixtureDB(6, 15)
	idx := buildIndex(t, db)
	// Query: a small path with a branch.
	q := graph.New(-1)
	n := []int{q.AddNode("C"), q.AddNode("C"), q.AddNode("N"), q.AddNode("C")}
	q.MustAddEdge(n[0], n[1])
	q.MustAddEdge(n[1], n[2])
	q.MustAddEdge(n[1], n[3])
	p := idx.Profile(q)
	// Sum over edges of EdgeCover[e][f] must equal Counts[f] * |f| (every
	// embedding covers |f| query edges).
	for _, fi := range p.ActiveFeat {
		total := 0
		for ei := range p.EdgeCover {
			total += p.EdgeCover[ei][fi]
		}
		want := p.Counts[fi] * idx.Features[fi].Size()
		if total != want {
			t.Fatalf("feature %d: edge cover total %d, want %d", fi, total, want)
		}
	}
	// ActiveFeat lists exactly the features with positive counts.
	for fi := range idx.Features {
		active := false
		for _, a := range p.ActiveFeat {
			if a == fi {
				active = true
			}
		}
		if active != (p.Counts[fi] > 0) {
			t.Fatalf("feature %d: active=%v counts=%d", fi, active, p.Counts[fi])
		}
	}
}
