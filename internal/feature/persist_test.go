package feature

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := fixtureDB(9, 15)
	idx := buildIndex(t, db)
	path := filepath.Join(t.TempDir(), "features.gob")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumFeatures() != idx.NumFeatures() || loaded.CountCap != idx.CountCap || loaded.MaxSize != idx.MaxSize {
		t.Fatal("metadata changed")
	}
	for gi := range idx.Counts {
		for fi := range idx.Counts[gi] {
			if loaded.Count(gi, fi) != idx.Count(gi, fi) {
				t.Fatalf("count[%d][%d] changed", gi, fi)
			}
		}
	}
	for code, fi := range idx.ByCode {
		if loaded.ByCode[code] != fi {
			t.Fatalf("code map changed for %s", code)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.gob")
	if err := os.WriteFile(bad, []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("corrupt file accepted")
	}
}
