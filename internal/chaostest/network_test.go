package chaostest

import "testing"

// TestNetworkChaos is the distributed-serving acceptance gate: 50 seeded
// partition schedules over a real loopback topology (two shards, two
// replicas each, one RemoteStore coordinator), cycling connection drops,
// slow replicas, full shard partitions, stale-epoch replies, dead-replica
// failover, and latency-plus-mutation mixes. Every schedule must finish
// inside the watchdog (no deadlock), every answer must be complete, flagged,
// or a typed error, and every fault family must demonstrably bite — a
// network chaos suite whose hedges never fire proves nothing.
func TestNetworkChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("network chaos boots 200 loopback servers; skipped in -short")
	}
	tot := RunNetwork(t, QuickNetwork())
	if t.Failed() {
		return
	}
	t.Logf("network chaos totals: %+v", tot)
	if tot.Runs == 0 {
		t.Fatal("network chaos checked zero runs")
	}
	if tot.FaultsFired == 0 {
		t.Fatal("no network fault ever fired — the schedules are not reaching the RPC sites")
	}
	if tot.Hedged == 0 || tot.HedgeWins == 0 {
		t.Errorf("hedging never raced a slow replica to a win (hedged=%d wins=%d)", tot.Hedged, tot.HedgeWins)
	}
	if tot.Retries == 0 {
		t.Error("no call ever took a retry round — the drop schedules are not biting")
	}
	if tot.RPCErrors == 0 {
		t.Error("no call ever exhausted its endpoints — the partition schedules never degraded typed")
	}
	if tot.StaleEpoch == 0 {
		t.Error("no corrupted reply was ever rejected — the stale-epoch schedules are not biting")
	}
	if tot.Mutations == 0 {
		t.Fatal("the network mutator never committed a mutation")
	}
	if tot.MutatedRuns == 0 {
		t.Error("no run ever pinned a post-mutation epoch over the wire")
	}
}
