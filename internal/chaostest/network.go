// Network chaos: seeded partition schedules over a real distributed
// topology. Each schedule boots four loopback shard servers — two shards,
// two replicas each, every server holding its own store replica and its own
// fault injector — dials a RemoteStore over them, and drives the scripted
// chaos workload through a service built on that remote store while the
// network misbehaves: coordinator-side connection drops, slow replicas that
// hedging must race, full partitions of one shard, stale-epoch replies, and
// dead replicas the client must fail over around. Some schedules stream
// online mutations through the coordinator's lockstep broadcast and hold
// every Run to the epoch-consistency contract against a pinned-epoch oracle.
//
// The contract is the fault-chaos contract extended over the wire:
//
//   - no deadlock (watchdog-bounded, with hedged requests keeping probes
//     live past a slow replica),
//   - every Run answer is complete, flagged Truncated with sound bounds, or
//     a typed error (a partitioned shard surfaces as ErrShardUnavailable,
//     never as a silently wrong answer),
//   - a schedule with one healthy replica per shard degrades nothing: the
//     client fails over and every answer stays StageFull,
//   - after all injectors are disarmed, every session answers exactly again,
//   - under mutation, server replicas stay in lockstep with the coordinator.
package chaostest

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"prague/internal/faultinject"
	"prague/internal/graph"
	"prague/internal/metrics"
	"prague/internal/rpcstore"
	"prague/internal/service"
	"prague/internal/store"
)

// NetworkConfig sizes a network chaos run. Start from QuickNetwork.
type NetworkConfig struct {
	Seed      int64
	Schedules int // seeded partition schedules (one topology each)
	Sessions  int // concurrent query sessions per schedule
	Steps     int // scripted operations per session
	DBSize    int // data graphs per database
	Sigma     int // subgraph distance threshold
	Mutations int // online mutations streamed per mutating schedule
}

// QuickNetwork is the configuration run under plain `go test` (and `-race`
// in the verification gate): 50 seeded partition schedules cycling six
// network fault families.
func QuickNetwork() NetworkConfig {
	return NetworkConfig{Seed: 29, Schedules: 50, Sessions: 3, Steps: 8, DBSize: 36, Sigma: 2, Mutations: 12}
}

// NetworkTotals aggregates what the network chaos observed, so callers can
// assert every fault family was actually exercised end to end.
type NetworkTotals struct {
	Runs        int64 // checked Run invocations
	Degraded    int64 // runs that answered below StageFull
	MutatedRuns int64 // runs that pinned a post-mutation epoch
	Mutations   int64 // mutations committed through the coordinator
	FaultsFired int64 // network fault rules that fired (client + servers)
	Hedged      int64 // hedge requests fired to a replica
	HedgeWins   int64 // calls answered by the hedge, not the primary
	Retries     int64 // backoff retry rounds taken
	RPCErrors   int64 // calls that exhausted every endpoint (typed degradation)
	StaleEpoch  int64 // corrupted replies caught by the epoch-consistency check
}

// Network scenario kinds, cycled by schedule index.
const (
	netConnDrop  = iota // coordinator-side connection drops; retries absorb them
	netSlowShard        // one slow replica per shard; hedging must keep probes live
	netPartition        // both replicas of one shard drop everything: complete-or-typed
	netStale            // servers reply with corrupted epoch tags; client must reject
	netFailover         // one dead replica per shard; answers must stay StageFull
	netMutate           // latency-only chaos plus online mutations: epoch consistency
	netKinds
)

// netSchedule is one deterministic network chaos scenario: which rules are
// armed on the coordinator's injector and on each of the four server
// injectors.
type netSchedule struct {
	kind       int
	client     map[faultinject.Site]faultinject.Rule
	servers    [4]map[faultinject.Site]faultinject.Rule
	cacheBytes int64
}

func (sc netSchedule) String() string {
	armed := 0
	for _, rules := range sc.servers {
		armed += len(rules)
	}
	return fmt.Sprintf("kind=%d client=%d servers=%d cache=%d", sc.kind, len(sc.client), armed, sc.cacheBytes)
}

// genNetSchedule derives schedule i deterministically. Servers 0 and 1
// replicate shard 0; servers 2 and 3 replicate shard 1.
func genNetSchedule(i int, r *rand.Rand) netSchedule {
	sc := netSchedule{
		kind:       i % netKinds,
		client:     map[faultinject.Site]faultinject.Rule{},
		cacheBytes: 1 << 20,
	}
	for j := range sc.servers {
		sc.servers[j] = map[faultinject.Site]faultinject.Rule{}
	}
	if r.Intn(3) == 0 {
		sc.cacheBytes = 0 // exercise the uncached remote paths too
	}
	switch sc.kind {
	case netConnDrop:
		sc.client[faultinject.SiteRPCConn] = faultinject.Rule{Every: 2 + r.Intn(3), Err: true}
	case netSlowShard:
		// Slow down each shard's FIRST endpoint: the client's retry rotation
		// makes endpoint 0 of a shard the round-0 primary for every call, so
		// arming the primaries guarantees the hedge timer races a slow primary
		// (a slow second replica would only ever be the hedge target itself).
		lat := time.Duration(10+r.Intn(25)) * time.Millisecond
		sc.servers[0][faultinject.SiteRPCServe] = faultinject.Rule{Every: 1, Latency: lat}
		sc.servers[2][faultinject.SiteRPCServe] = faultinject.Rule{Every: 1, Latency: lat}
	case netPartition:
		s := r.Intn(2)
		sc.servers[2*s][faultinject.SiteRPCServe] = faultinject.Rule{Every: 1, Err: true}
		sc.servers[2*s+1][faultinject.SiteRPCServe] = faultinject.Rule{Every: 1, Err: true}
	case netStale:
		sc.servers[r.Intn(4)][faultinject.SiteRPCEpoch] = faultinject.Rule{Every: 2 + r.Intn(2), Err: true}
		sc.servers[r.Intn(4)][faultinject.SiteRPCEpoch] = faultinject.Rule{Every: 2 + r.Intn(3), Err: true}
	case netFailover:
		sc.servers[r.Intn(2)][faultinject.SiteRPCServe] = faultinject.Rule{Every: 1, Err: true}
		sc.servers[2+r.Intn(2)][faultinject.SiteRPCServe] = faultinject.Rule{Every: 1, Err: true}
	default: // netMutate: latency-only chaos so every mutation commits
		sc.client[faultinject.SiteRPCConn] = faultinject.Rule{
			Every: 1 + r.Intn(2), Latency: time.Duration(200+r.Intn(600)) * time.Microsecond,
		}
		sc.servers[r.Intn(4)][faultinject.SiteRPCServe] = faultinject.Rule{
			Every: 2, Latency: time.Duration(1+r.Intn(3)) * time.Millisecond,
		}
	}
	return sc
}

// netCluster is one booted remote topology: four loopback servers (two
// shards, two replicas each), each with its own store replica and injector,
// and the RemoteStore dialed over them.
type netCluster struct {
	reps    []store.Store
	servers []*rpcstore.Server
	injs    []*faultinject.Injector
	remote  *rpcstore.RemoteStore
}

// netServe maps server index to the shard subset it serves.
var netServe = [4][]int{{0}, {0}, {1}, {1}}

func bootNetCluster(t *testing.T, fx *Fixture, reg *metrics.Registry) *netCluster {
	t.Helper()
	c := &netCluster{}
	addrs := make([]string, 0, len(netServe))
	for j := range netServe {
		rep, err := store.NewSharded(fx.DB, fx.Idx, 2)
		if err != nil {
			t.Fatal(err)
		}
		inj := faultinject.New()
		srv := rpcstore.NewServer(rep,
			rpcstore.WithServeShards(netServe[j]...),
			rpcstore.WithServerInjector(inj))
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatalf("netcluster: server %d: %v", j, err)
		}
		c.reps = append(c.reps, rep)
		c.injs = append(c.injs, inj)
		c.servers = append(c.servers, srv)
		addrs = append(addrs, srv.Addr().String())
	}
	rs, err := rpcstore.Dial(context.Background(), addrs, rpcstore.WithClientMetrics(reg))
	if err != nil {
		c.close()
		t.Fatalf("netcluster: dial: %v", err)
	}
	c.remote = rs
	return c
}

func (c *netCluster) close() {
	if c.remote != nil {
		c.remote.Close()
	}
	for _, srv := range c.servers {
		srv.Close()
	}
}

// disarmAll silences the coordinator-side injector and every server's.
func (c *netCluster) disarmAll(svcInj *faultinject.Injector) {
	svcInj.Disarm()
	for _, inj := range c.injs {
		inj.Disarm()
	}
}

// RunNetwork executes cfg.Schedules network chaos schedules as subtests and
// returns the aggregate totals. Any invariant violation fails t.
func RunNetwork(t *testing.T, cfg NetworkConfig) NetworkTotals {
	t.Helper()
	fixtures := []*Fixture{
		BuildFixture(t, cfg.Seed, cfg.DBSize),
		BuildFixture(t, cfg.Seed+7919, cfg.DBSize),
	}
	var mu sync.Mutex
	var tot NetworkTotals
	for i := 0; i < cfg.Schedules; i++ {
		i := i
		fx := fixtures[i%len(fixtures)]
		t.Run(fmt.Sprintf("network-schedule-%02d", i), func(t *testing.T) {
			st := runNetworkSchedule(t, cfg, fx, i)
			mu.Lock()
			tot.Runs += st.Runs
			tot.Degraded += st.Degraded
			tot.MutatedRuns += st.MutatedRuns
			tot.Mutations += st.Mutations
			tot.FaultsFired += st.FaultsFired
			tot.Hedged += st.Hedged
			tot.HedgeWins += st.HedgeWins
			tot.Retries += st.Retries
			tot.RPCErrors += st.RPCErrors
			tot.StaleEpoch += st.StaleEpoch
			mu.Unlock()
		})
	}
	return tot
}

// runNetworkSchedule boots one topology, arms one network fault scenario,
// drives the scripted workload under the watchdog, then disarms everything
// and requires exact recovery (and, under mutation, replica lockstep).
func runNetworkSchedule(t *testing.T, cfg NetworkConfig, fx *Fixture, i int) NetworkTotals {
	t.Helper()
	r := rand.New(rand.NewSource(cfg.Seed*1000 + int64(i)))
	sc := genNetSchedule(i, r)

	reg := metrics.NewRegistry()
	cl := bootNetCluster(t, fx, reg)
	defer cl.close()
	// Server rules arm only after Dial: the hello handshake and the graph
	// prefetch run over a healthy network, like a deploy that degrades later.
	for j, rules := range sc.servers {
		for site, rule := range rules {
			cl.injs[j].Set(site, rule)
		}
	}
	inj := faultinject.New()
	for site, rule := range sc.client {
		inj.Set(site, rule)
	}

	svc, err := service.NewFromStore(cl.remote,
		service.WithSigma(cfg.Sigma),
		service.WithVerifyWorkers(2),
		service.WithMetrics(reg),
		service.WithCandidateCache(sc.cacheBytes),
		service.WithFaultInjection(inj),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var tot NetworkTotals
	if sc.kind == netMutate {
		tot = driveNetMutation(t, cfg, cl, svc, i, inj)
	} else {
		tot = driveNetImmutable(t, cfg, fx, cl, svc, sc, i, inj)
	}
	if t.Failed() {
		return NetworkTotals{}
	}

	snap := reg.Snapshot()
	tot.Hedged = snap.Counters[metrics.CounterShardRPCHedged]
	tot.HedgeWins = snap.Counters[metrics.CounterShardRPCHedgeWins]
	tot.Retries = snap.Counters[metrics.CounterShardRPCRetries]
	tot.RPCErrors = snap.Counters[metrics.CounterShardRPCErrors]
	tot.StaleEpoch = snap.Counters[metrics.CounterShardRPCStaleEpoch]
	tot.FaultsFired = inj.Fired(faultinject.SiteRPCConn)
	for _, sinj := range cl.injs {
		tot.FaultsFired += sinj.Fired(faultinject.SiteRPCServe) + sinj.Fired(faultinject.SiteRPCEpoch)
	}

	// Scenario-specific guarantees on top of the generic contract.
	switch sc.kind {
	case netSlowShard:
		// Hedging liveness: the healthy replica must have been raced at
		// least once, and racing it must keep every answer exact — a slow
		// replica is a latency problem, never a correctness one.
		if tot.Hedged == 0 {
			t.Errorf("schedule %d (%v): slow replicas armed but no hedge request fired", i, sc)
		}
		if tot.Degraded != 0 || tot.RPCErrors != 0 {
			t.Errorf("schedule %d (%v): slow replicas degraded answers (degraded=%d rpcErrors=%d); hedging should have absorbed them",
				i, sc, tot.Degraded, tot.RPCErrors)
		}
	case netFailover:
		// With one healthy replica per shard, failover must keep every call
		// answerable: no call may exhaust its endpoints, and no Run may
		// degrade below StageFull.
		if tot.Degraded != 0 || tot.RPCErrors != 0 {
			t.Errorf("schedule %d (%v): replica failover leaked failures (degraded=%d rpcErrors=%d)",
				i, sc, tot.Degraded, tot.RPCErrors)
		}
		fired := int64(0)
		for _, sinj := range cl.injs {
			fired += sinj.Fired(faultinject.SiteRPCServe)
		}
		if fired == 0 {
			t.Errorf("schedule %d (%v): dead replicas armed but never hit — failover not exercised", i, sc)
		}
	}
	return tot
}

// driveNetImmutable runs the fault-chaos driver workload (mirrored sessions,
// checked runs against the immutable fixture oracle) over the remote store,
// then disarms every injector and asserts exact recovery.
func driveNetImmutable(t *testing.T, cfg NetworkConfig, fx *Fixture, cl *netCluster,
	svc *service.Service, sc netSchedule, i int, inj *faultinject.Injector) NetworkTotals {
	t.Helper()
	drivers := make([]*driver, cfg.Sessions)
	for s := range drivers {
		drivers[s] = newDriver(t, fx, svc, cfg.Sigma,
			rand.New(rand.NewSource(cfg.Seed*1_000_000+int64(i)*1000+int64(s))))
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for _, d := range drivers {
			d := d
			wg.Add(1)
			go func() {
				defer wg.Done()
				d.drive(cfg.Steps, false)
			}()
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatalf("network schedule %d (%v): deadlock — workload did not finish within the watchdog", i, sc)
	}
	if t.Failed() {
		return NetworkTotals{}
	}

	// Recovery: with the network healed, every session must answer exactly
	// again — a partition must leave no lasting damage behind.
	cl.disarmAll(inj)
	for _, d := range drivers {
		d.assertMirror("after network chaos")
		d.assertExactRecovery()
	}

	var tot NetworkTotals
	for _, d := range drivers {
		tot.Runs += d.runs
		tot.Degraded += d.degraded
	}
	return tot
}

// driveNetMutation streams online mutations through the coordinator's
// lockstep broadcast while sessions evaluate over the chaotic network, holds
// every Run to the pinned-epoch oracle, then requires convergence and
// replica lockstep. The mutation schedules arm latency-only faults, so every
// mutation must commit — a broadcast that drops a replica is a test failure,
// not a tolerated degradation.
func driveNetMutation(t *testing.T, cfg NetworkConfig, cl *netCluster, svc *service.Service, i int, inj *faultinject.Injector) NetworkTotals {
	t.Helper()
	hist := &epochHistory{dbs: map[uint64][]*graph.Graph{}}
	hist.cond = sync.NewCond(&hist.mu)
	hist.record(cl.remote.Epoch(), liveGraphs(cl.remote))

	var tot NetworkTotals
	drivers := make([]*mutDriver, cfg.Sessions)
	for s := range drivers {
		drivers[s] = newMutDriver(t, svc, hist, cfg.Sigma,
			rand.New(rand.NewSource(cfg.Seed*1_000_000+int64(i)*1000+int64(s))))
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // the mutator: the only writer of remote store epochs
			defer wg.Done()
			ctx := context.Background()
			mr := rand.New(rand.NewSource(cfg.Seed*31 + int64(i)))
			for m := 0; m < cfg.Mutations; m++ {
				live := cl.remote.LiveIDs()
				if mr.Intn(2) == 0 || len(live) <= cfg.DBSize/2 {
					g := makeGraph(mr)
					if _, err := svc.InsertGraph(ctx, g); err != nil {
						t.Errorf("network mutator: insert: %v", err)
						return
					}
				} else {
					id := live[mr.Intn(len(live))]
					if err := svc.DeleteGraph(ctx, id); err != nil {
						t.Errorf("network mutator: delete %d: %v", id, err)
						return
					}
				}
				hist.record(cl.remote.Epoch(), liveGraphs(cl.remote))
				tot.Mutations++
				time.Sleep(time.Duration(mr.Intn(400)) * time.Microsecond)
			}
		}()
		for _, d := range drivers {
			d := d
			wg.Add(1)
			go func() {
				defer wg.Done()
				d.drive(cfg.Steps)
			}()
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatalf("network schedule %d: deadlock — mutating workload did not finish within the watchdog", i)
	}
	if t.Failed() {
		return NetworkTotals{}
	}

	cl.disarmAll(inj)

	// Lockstep: after the stream, every server replica must hold exactly the
	// coordinator's state — same epoch, same content-derived cache tag.
	for j, rep := range cl.reps {
		if rep.Epoch() != cl.remote.Epoch() || rep.CacheTag() != cl.remote.CacheTag() {
			t.Errorf("network schedule %d: replica %d diverged: (%d, %s) vs coordinator (%d, %s)",
				i, j, rep.Epoch(), rep.CacheTag(), cl.remote.Epoch(), cl.remote.CacheTag())
		}
	}

	// Convergence: mutation stopped, so every session must produce a
	// StageFull answer pinned to the final epoch matching its oracle.
	for _, d := range drivers {
		d.assertConverged(cl.remote.Epoch())
	}
	for _, d := range drivers {
		tot.Runs += d.runs
		tot.MutatedRuns += d.mutatedRuns
	}
	return tot
}
