package chaostest

import "testing"

// TestChaosQuick is the acceptance gate: 50 seeded fault schedules, each a
// multi-session scripted workload under injected verification errors,
// panics, latency, cache/index faults, tight deadlines, and overload bursts.
// Zero invariant violations are tolerated, and the chaos must demonstrably
// bite — a suite whose faults never fire proves nothing.
func TestChaosQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite mines two fixtures; skipped in -short")
	}
	tot := Run(t, Quick())
	if t.Failed() {
		return
	}
	t.Logf("chaos totals: %+v", tot)
	if tot.Runs == 0 {
		t.Fatal("chaos suite checked zero runs")
	}
	if tot.FaultsFired == 0 {
		t.Fatal("no injected fault ever fired — the schedules are not reaching the instrumented sites")
	}
	if tot.Degraded == 0 {
		t.Error("no run ever degraded below StageFull — the ladder was never exercised")
	}
	if tot.WorkerPanics == 0 {
		t.Error("no verification panic was recovered — the panic schedules are not reaching the pool")
	}
	if tot.Shed == 0 {
		t.Error("admission control never shed — the overload schedules are not colliding")
	}
}

// TestMutationChaos drives seeded schedules in which a mutator streams
// InsertGraph/DeleteGraph calls through the service while sessions evaluate
// concurrently. Every Run must be epoch-consistent: pinned to exactly one
// store epoch (RunOutcome.Epoch) and answering exactly the oracle over that
// epoch's recorded database — a run that mixed two epochs, surfaced a
// deleted graph, or leaked a mid-evaluation insert fails.
func TestMutationChaos(t *testing.T) {
	cfg := QuickMutation()
	if testing.Short() {
		// The tiny fixtures mine in well under a second, so unlike the main
		// chaos suite this one stays on in -short — just fewer schedules.
		cfg.Schedules = 2
	}
	tot := RunMutation(t, cfg)
	if t.Failed() {
		return
	}
	t.Logf("mutation chaos totals: %+v", tot)
	if tot.Runs == 0 {
		t.Fatal("mutation chaos checked zero runs")
	}
	if tot.Mutations == 0 {
		t.Fatal("the mutator never committed a mutation")
	}
	if tot.MutatedRuns == 0 {
		t.Error("no run ever pinned a post-mutation epoch — mutation never interleaved with evaluation")
	}
}
