package chaostest

import "testing"

// TestChaosQuick is the acceptance gate: 50 seeded fault schedules, each a
// multi-session scripted workload under injected verification errors,
// panics, latency, cache/index faults, tight deadlines, and overload bursts.
// Zero invariant violations are tolerated, and the chaos must demonstrably
// bite — a suite whose faults never fire proves nothing.
func TestChaosQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite mines two fixtures; skipped in -short")
	}
	tot := Run(t, Quick())
	if t.Failed() {
		return
	}
	t.Logf("chaos totals: %+v", tot)
	if tot.Runs == 0 {
		t.Fatal("chaos suite checked zero runs")
	}
	if tot.FaultsFired == 0 {
		t.Fatal("no injected fault ever fired — the schedules are not reaching the instrumented sites")
	}
	if tot.Degraded == 0 {
		t.Error("no run ever degraded below StageFull — the ladder was never exercised")
	}
	if tot.WorkerPanics == 0 {
		t.Error("no verification panic was recovered — the panic schedules are not reaching the pool")
	}
	if tot.Shed == 0 {
		t.Error("admission control never shed — the overload schedules are not colliding")
	}
}
