// Mutation chaos: seeded schedules that mutate the database mid-evaluation.
// One mutator goroutine streams InsertGraph/DeleteGraph calls through the
// service while scripted sessions formulate and run concurrently; some
// schedules also inject verification latency to stretch each Run so
// mutations reliably land inside its evaluation window. The contract is
// epoch consistency: every Run answers against exactly one store epoch — the
// one it pinned at entry, reported in RunOutcome.Epoch — so its answer must
// equal the oracle over that epoch's database, never a mix of two states, no
// matter how many mutations commit while it evaluates. The mutator records
// the live graph set at every epoch it publishes; each checked Run replays
// the oracle against the recorded database of its pinned epoch.

package chaostest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"prague/internal/core"
	"prague/internal/faultinject"
	"prague/internal/graph"
	"prague/internal/metrics"
	"prague/internal/naivescan"
	"prague/internal/service"
	"prague/internal/store"
)

// MutationConfig sizes a mutation chaos run. Start from QuickMutation.
type MutationConfig struct {
	Seed      int64
	Schedules int // seeded schedules (one service + mutator each)
	Sessions  int // concurrent query sessions per schedule
	Steps     int // scripted operations per session
	DBSize    int // initial data graphs per database
	Sigma     int // subgraph distance threshold
	Mutations int // online mutations streamed per schedule
}

// QuickMutation is the configuration run under plain `go test` (and `-race`
// in the verification gate). Schedules alternate monolithic and 4-way
// sharded stores.
func QuickMutation() MutationConfig {
	return MutationConfig{Seed: 13, Schedules: 6, Sessions: 3, Steps: 8, DBSize: 36, Sigma: 2, Mutations: 24}
}

// MutationTotals aggregates what the mutation chaos observed, so callers can
// assert mutation actually interleaved with evaluation.
type MutationTotals struct {
	Runs        int64 // checked Run invocations
	MutatedRuns int64 // runs that pinned a post-mutation epoch (> 0)
	Mutations   int64 // mutations the mutator committed
}

// epochHistory maps every published epoch to the live database at that
// epoch. The mutator is the only writer; checked Runs look their pinned
// epoch up (with a short wait — a Run can pin a fresh epoch before the
// mutator finishes recording it).
type epochHistory struct {
	mu   sync.Mutex
	cond *sync.Cond // signals each record; waitGet blocks on it, no polling
	dbs  map[uint64][]*graph.Graph
}

func (h *epochHistory) record(epoch uint64, db []*graph.Graph) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dbs[epoch] = db
	if h.cond != nil {
		h.cond.Broadcast()
	}
}

func (h *epochHistory) waitGet(epoch uint64) ([]*graph.Graph, bool) {
	// Bounded by a timer goroutine rather than a sleep-poll loop: the waiter
	// wakes the instant the mutator records the epoch.
	timeout := time.AfterFunc(2*time.Second, func() {
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
	})
	defer timeout.Stop()
	deadline := time.Now().Add(2 * time.Second)
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if db, ok := h.dbs[epoch]; ok {
			return db, ok
		}
		if time.Now().After(deadline) {
			return nil, false
		}
		h.cond.Wait()
	}
}

// liveGraphs snapshots the store's current live database in id order.
func liveGraphs(st store.Store) []*graph.Graph {
	ids := st.LiveIDs()
	db := make([]*graph.Graph, 0, len(ids))
	for _, id := range ids {
		db = append(db, st.Graph(id))
	}
	return db
}

// RunMutation executes cfg.Schedules mutation chaos schedules as subtests
// and returns the aggregate totals. Any epoch-consistency violation fails t.
func RunMutation(t *testing.T, cfg MutationConfig) MutationTotals {
	t.Helper()
	fixtures := []*Fixture{
		BuildFixture(t, cfg.Seed, cfg.DBSize),
		BuildFixture(t, cfg.Seed+7919, cfg.DBSize),
	}
	var mu sync.Mutex
	var tot MutationTotals
	for i := 0; i < cfg.Schedules; i++ {
		i := i
		fx := fixtures[i%len(fixtures)]
		t.Run(fmt.Sprintf("mutation-schedule-%02d", i), func(t *testing.T) {
			st := runMutationSchedule(t, cfg, fx, i)
			mu.Lock()
			tot.Runs += st.Runs
			tot.MutatedRuns += st.MutatedRuns
			tot.Mutations += st.Mutations
			mu.Unlock()
		})
	}
	return tot
}

// runMutationSchedule builds one service over a mutable store, streams
// mutations through it while scripted sessions evaluate, then requires every
// session to converge to a StageFull answer matching the final epoch's
// oracle.
func runMutationSchedule(t *testing.T, cfg MutationConfig, fx *Fixture, i int) MutationTotals {
	t.Helper()
	r := rand.New(rand.NewSource(cfg.Seed*1000 + int64(i)))

	var (
		st  store.Store
		err error
	)
	if i%2 == 0 {
		st, err = store.NewMem(fx.DB, fx.Idx)
	} else {
		st, err = store.NewSharded(fx.DB, fx.Idx, 4)
	}
	if err != nil {
		t.Fatal(err)
	}

	// Half the schedules stretch each Run with injected verification latency
	// (no errors — answers stay exact) so mutations land mid-evaluation.
	inj := faultinject.New()
	if r.Intn(2) == 0 {
		inj.Set(faultinject.SiteVerify, faultinject.Rule{
			Every: 1 + r.Intn(2), Latency: time.Duration(100+r.Intn(400)) * time.Microsecond,
		})
	}
	cacheBytes := int64(1 << 20)
	if r.Intn(3) == 0 {
		cacheBytes = 0
	}
	svc, err := service.NewFromStore(st,
		service.WithSigma(cfg.Sigma),
		service.WithVerifyWorkers(2),
		service.WithMetrics(metrics.NewRegistry()),
		service.WithCandidateCache(cacheBytes),
		service.WithFaultInjection(inj),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	hist := &epochHistory{dbs: map[uint64][]*graph.Graph{}}
	hist.cond = sync.NewCond(&hist.mu)
	hist.record(0, liveGraphs(st))

	var tot MutationTotals
	drivers := make([]*mutDriver, cfg.Sessions)
	for s := range drivers {
		drivers[s] = newMutDriver(t, svc, hist, cfg.Sigma,
			rand.New(rand.NewSource(cfg.Seed*1_000_000+int64(i)*1000+int64(s))))
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // the mutator: the only writer of store epochs
			defer wg.Done()
			ctx := context.Background()
			mr := rand.New(rand.NewSource(cfg.Seed*31 + int64(i)))
			for m := 0; m < cfg.Mutations; m++ {
				live := st.LiveIDs()
				if mr.Intn(2) == 0 || len(live) <= cfg.DBSize/2 {
					g := makeGraph(mr)
					if _, err := svc.InsertGraph(ctx, g); err != nil {
						t.Errorf("mutator: insert: %v", err)
						return
					}
				} else {
					id := live[mr.Intn(len(live))]
					if err := svc.DeleteGraph(ctx, id); err != nil {
						t.Errorf("mutator: delete %d: %v", id, err)
						return
					}
				}
				hist.record(st.Epoch(), liveGraphs(st))
				tot.Mutations++
				time.Sleep(time.Duration(mr.Intn(400)) * time.Microsecond)
			}
		}()
		for _, d := range drivers {
			d := d
			wg.Add(1)
			go func() {
				defer wg.Done()
				d.drive(cfg.Steps)
			}()
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatalf("mutation schedule %d: deadlock — workload did not finish within the watchdog", i)
	}
	if t.Failed() {
		return MutationTotals{}
	}

	// Convergence: mutation has stopped, so every session's next exact Run
	// must pin the final epoch and match its oracle.
	inj.Disarm()
	for _, d := range drivers {
		d.assertConverged(st.Epoch())
	}
	for _, d := range drivers {
		tot.Runs += d.runs
		tot.MutatedRuns += d.mutatedRuns
	}
	return tot
}

// makeGraph builds one connected random molecule-like graph for online
// insertion (same family as BuildFixture's generator).
func makeGraph(r *rand.Rand) *graph.Graph {
	nodes := 4 + r.Intn(6)
	g := graph.New(0)
	for v := 0; v < nodes; v++ {
		g.AddNode(nodeLabels[r.Intn(len(nodeLabels))])
	}
	for v := 1; v < nodes; v++ {
		g.MustAddEdge(v, r.Intn(v))
	}
	for k := 0; k < r.Intn(3); k++ {
		u, v := r.Intn(nodes), r.Intn(nodes)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// mutDriver scripts one session against a mutating database. Unlike the
// fault-chaos driver it needs no mirror reconciliation — no error faults are
// armed — but every checked Run is held to the epoch-consistency contract.
type mutDriver struct {
	t     *testing.T
	svc   *service.Service
	sess  *service.Session
	hist  *epochHistory
	r     *rand.Rand
	sigma int

	nodes []int
	edges [][2]int // endpoints of drawn edges, for anchored adds

	lastEpoch   uint64
	runs        int64
	mutatedRuns int64
}

func newMutDriver(t *testing.T, svc *service.Service, hist *epochHistory, sigma int, r *rand.Rand) *mutDriver {
	t.Helper()
	sess, err := svc.Create(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	d := &mutDriver{t: t, svc: svc, sess: sess, hist: hist, r: r, sigma: sigma}
	d.addNode()
	d.addNode()
	return d
}

func (d *mutDriver) addNode() int {
	id, err := d.sess.AddNode(nodeLabels[d.r.Intn(len(nodeLabels))])
	if err != nil {
		d.t.Errorf("session %s: AddNode: %v", d.sess.ID(), err)
		return -1
	}
	d.nodes = append(d.nodes, id)
	return id
}

func (d *mutDriver) resolveChoice(ctx context.Context) {
	if _, err := d.sess.ChooseSimilarity(ctx); err != nil {
		d.t.Errorf("session %s: ChooseSimilarity: %v", d.sess.ID(), err)
	}
}

// drive alternates anchored edge adds with checked Runs while the mutator
// streams database changes underneath.
func (d *mutDriver) drive(steps int) {
	ctx := context.Background()
	for k := 0; k < steps && !d.t.Failed(); k++ {
		if d.r.Intn(3) > 0 || len(d.edges) == 0 {
			d.opAdd(ctx)
		} else {
			d.checkedRun(ctx)
		}
	}
	d.checkedRun(ctx)
}

// opAdd draws one structurally valid edge: anchored at an endpoint already
// in the fragment, usually to a fresh node.
func (d *mutDriver) opAdd(ctx context.Context) {
	var u int
	if len(d.edges) == 0 {
		u = d.nodes[d.r.Intn(len(d.nodes))]
	} else {
		e := d.edges[d.r.Intn(len(d.edges))]
		u = e[d.r.Intn(2)]
	}
	v := d.addNode()
	if v < 0 {
		return
	}
	out, err := d.sess.AddLabeledEdge(ctx, u, v, edgeLabels[d.r.Intn(len(edgeLabels))])
	if err != nil {
		d.t.Errorf("session %s: AddEdge: %v", d.sess.ID(), err)
		return
	}
	d.edges = append(d.edges, [2]int{u, v})
	if out.NeedsChoice {
		d.resolveChoice(ctx)
	}
}

// checkedRun is the epoch-consistency invariant: the Run pinned exactly one
// epoch, epochs never move backwards within a session, and the answer is the
// ladder contract evaluated against that epoch's recorded database — never a
// blend of two epochs.
func (d *mutDriver) checkedRun(ctx context.Context) {
	out, err := d.sess.RunDetailed(ctx)
	d.runs++
	if err != nil {
		if errors.Is(err, core.ErrAwaitingChoice) {
			d.resolveChoice(ctx)
			return
		}
		if errors.Is(err, core.ErrEmptyQuery) {
			return
		}
		d.t.Errorf("session %s: Run: %v", d.sess.ID(), err)
		return
	}
	if out.Epoch < d.lastEpoch {
		d.t.Errorf("session %s: epoch moved backwards: %d after %d", d.sess.ID(), out.Epoch, d.lastEpoch)
		return
	}
	d.lastEpoch = out.Epoch
	if out.Epoch > 0 {
		d.mutatedRuns++
	}
	db, ok := d.hist.waitGet(out.Epoch)
	if !ok {
		d.t.Errorf("session %s: Run pinned epoch %d, which the mutator never published", d.sess.ID(), out.Epoch)
		return
	}
	d.checkAgainst(out, db, "chaos")
}

// checkAgainst verifies one Run outcome against the oracle over the pinned
// epoch's database, reusing the ladder contract checker.
func (d *mutDriver) checkAgainst(out core.RunOutcome, db []*graph.Graph, phase string) {
	info, err := d.sess.Describe()
	if err != nil {
		d.t.Errorf("session %s: Describe after Run: %v", d.sess.ID(), err)
		return
	}
	qg, err := d.sess.QueryGraph()
	if err != nil || qg == nil {
		d.t.Errorf("session %s: QueryGraph after Run: graph=%v err=%v", d.sess.ID(), qg, err)
		return
	}
	oracle, err := naivescan.New(db, 1)
	if err != nil {
		d.t.Errorf("session %s: oracle over epoch database: %v", d.sess.ID(), err)
		return
	}
	CheckOutcome(d.t, &Fixture{DB: db, Oracle: oracle},
		fmt.Sprintf("session %s (%s, epoch %d)", d.sess.ID(), phase, out.Epoch),
		out, info.SimilarityMode, qg, d.sigma)
}

// assertConverged: with mutation stopped, the session must produce a
// StageFull answer pinned to the final epoch and matching its oracle.
func (d *mutDriver) assertConverged(finalEpoch uint64) {
	ctx := context.Background()
	info, err := d.sess.Describe()
	if err != nil {
		d.t.Errorf("session %s: Describe in convergence: %v", d.sess.ID(), err)
		return
	}
	if info.QuerySize == 0 {
		return
	}
	if info.AwaitingChoice {
		d.resolveChoice(ctx)
	}
	for attempt := 0; attempt < 8; attempt++ {
		out, err := d.sess.RunDetailed(ctx)
		if err != nil {
			if errors.Is(err, core.ErrAwaitingChoice) {
				d.resolveChoice(ctx)
				continue
			}
			d.t.Errorf("session %s: convergence Run: %v", d.sess.ID(), err)
			return
		}
		if out.Stage != core.StageFull {
			continue
		}
		if out.Epoch != finalEpoch {
			d.t.Errorf("session %s: convergence Run pinned epoch %d, store is at %d", d.sess.ID(), out.Epoch, finalEpoch)
			return
		}
		db, ok := d.hist.waitGet(finalEpoch)
		if !ok {
			d.t.Errorf("session %s: final epoch %d never recorded", d.sess.ID(), finalEpoch)
			return
		}
		d.checkAgainst(out, db, "convergence")
		return
	}
	d.t.Errorf("session %s: never produced a StageFull answer after mutation stopped", d.sess.ID())
}
