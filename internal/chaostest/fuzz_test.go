package chaostest

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"prague/internal/core"
	"prague/internal/faultinject"
)

var (
	fuzzOnce sync.Once
	fuzzFx   *Fixture
)

// fuzzFixture mines one small shared fixture; fuzz iterations must be cheap,
// so the expensive mining happens once per process.
func fuzzFixture(tb testing.TB) *Fixture {
	fuzzOnce.Do(func() { fuzzFx = BuildFixture(tb, 11, 24) })
	if fuzzFx == nil {
		tb.Skip("shared fuzz fixture failed to build")
	}
	return fuzzFx
}

// FuzzDegradationLadder drives the degradation ladder with fuzzer-chosen
// fault rules and budgets over a random (but seed-reproducible) query, and
// asserts the robustness contract: whatever the ladder answers is exactly
// the oracle (StageFull), a flagged sound subset (degraded stages), or a
// typed error — and once the injector is disarmed the session answers
// exactly again. The fuzzer's job is to find a (seed, rule) combination
// that makes the ladder silently wrong.
func FuzzDegradationLadder(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(0), uint8(0), uint16(0))
	f.Add(int64(2), uint8(1), uint8(1), uint8(0), uint8(0), uint16(0))  // verify error every hit
	f.Add(int64(3), uint8(2), uint8(2), uint8(0), uint8(0), uint16(0))  // verify panic every 3rd hit
	f.Add(int64(4), uint8(0), uint8(0), uint8(2), uint8(3), uint16(0))  // cache + index errors
	f.Add(int64(5), uint8(1), uint8(3), uint8(1), uint8(1), uint16(40)) // everything plus a 40µs budget
	f.Fuzz(func(t *testing.T, seed int64, vEvery, vMode, cEvery, iEvery uint8, budgetMicros uint16) {
		fx := fuzzFixture(t)
		e, err := core.New(fx.DB, fx.Idx, 2)
		if err != nil {
			t.Fatal(err)
		}

		// Formulate a small anchored query fault-free, so the faulted Run is
		// the only thing under test. Every add attaches a fresh node to an
		// existing one, which is always structurally valid.
		r := rand.New(rand.NewSource(seed))
		ctx := context.Background()
		nodes := []int{e.AddNode(nodeLabels[r.Intn(len(nodeLabels))])}
		for k := 2 + r.Intn(3); k > 0; k-- {
			u := nodes[r.Intn(len(nodes))]
			v := e.AddNode(nodeLabels[r.Intn(len(nodeLabels))])
			nodes = append(nodes, v)
			out, err := e.AddLabeledEdgeCtx(ctx, u, v, edgeLabels[r.Intn(len(edgeLabels))])
			if err != nil {
				t.Fatalf("formulation add: %v", err)
			}
			if out.NeedsChoice {
				if _, err := e.ChooseSimilarityCtx(ctx); err != nil {
					t.Fatalf("formulation choice: %v", err)
				}
			}
		}

		inj := faultinject.New()
		if vEvery > 0 {
			inj.Set(faultinject.SiteVerify, faultinject.Rule{
				Every:  1 + int(vEvery%5),
				Offset: int(vMode >> 4),
				Err:    vMode&1 != 0,
				Panic:  vMode&2 != 0,
			})
		}
		if cEvery > 0 {
			inj.Set(faultinject.SiteCache, faultinject.Rule{Every: 1 + int(cEvery%4), Err: true})
		}
		if iEvery > 0 {
			inj.Set(faultinject.SiteIndex, faultinject.Rule{Every: 1 + int(iEvery%4), Err: true})
		}
		if budgetMicros > 0 {
			e.SetRunBudget(time.Duration(budgetMicros) * time.Microsecond)
		}

		out, err := e.RunDetailedCtx(faultinject.With(ctx, inj))
		if err != nil {
			if !typedActionErr(err) {
				t.Fatalf("faulted run returned untyped error: %v", err)
			}
		} else {
			qg, _ := e.Query().Graph()
			CheckOutcome(t, fx, "faulted run", out, e.SimilarityMode(), qg, e.Sigma())
		}

		// Disarmed and unbudgeted, the same session must answer exactly.
		inj.Disarm()
		e.SetRunBudget(0)
		out, err = e.RunDetailedCtx(ctx)
		if err != nil {
			t.Fatalf("disarmed run: %v", err)
		}
		if out.Stage != core.StageFull || out.Truncated {
			t.Fatalf("disarmed run did not recover to StageFull: %+v", out)
		}
		qg, _ := e.Query().Graph()
		CheckOutcome(t, fx, "disarmed run", out, e.SimilarityMode(), qg, e.Sigma())
	})
}
