// Package chaostest is the deterministic chaos harness: it replays scripted
// multi-session workloads through the concurrent service while a seeded
// fault injector fails, delays, and panics the engine's verification, cache,
// and index probes — and checks on every Run that the robustness contract
// held. The contract under chaos:
//
//   - no deadlock (a watchdog bounds every schedule),
//   - no lost session state (the service's view of each query always equals
//     the driver's mirror),
//   - every Run answer is either complete (StageFull, exactly the naivescan
//     oracle), flagged Truncated with sound membership and distance bounds,
//     or a typed error — never silently wrong,
//   - after the injector is disarmed, every session answers exactly again.
//
// Schedules are generated from a seed, so every failure reproduces: rerun
// the named subtest and the same faults fire at the same probe hits.
package chaostest

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"prague/internal/core"
	"prague/internal/faultinject"
	"prague/internal/graph"
	"prague/internal/index"
	"prague/internal/metrics"
	"prague/internal/mining"
	"prague/internal/naivescan"
	"prague/internal/query"
	"prague/internal/service"
)

// Config sizes a chaos run. Start from Quick.
type Config struct {
	Seed      int64
	Schedules int // seeded fault schedules (one service each)
	Sessions  int // concurrent sessions per schedule
	Steps     int // scripted operations per session
	DBSize    int // data graphs per database
	Sigma     int // subgraph distance threshold
}

// Quick is the configuration run under plain `go test` (and `-race` in the
// verification gate): 50 seeded fault schedules, three concurrent sessions
// each.
func Quick() Config {
	return Config{Seed: 7, Schedules: 50, Sessions: 3, Steps: 8, DBSize: 36, Sigma: 2}
}

// Totals aggregates what the chaos run observed across all schedules, so
// callers can assert the machinery was actually exercised (a chaos suite
// whose faults never fire proves nothing).
type Totals struct {
	Runs         int64 // checked Run invocations
	Degraded     int64 // runs that answered below StageFull
	Shed         int64 // actions rejected by admission control
	WorkerPanics int64 // verification panics recovered by the pool
	FaultsFired  int64 // injector rules that fired
}

var (
	nodeLabels = []string{"C", "C", "C", "N", "O", "S"}
	edgeLabels = []string{"", "", "", "1", "2"}
)

// Fixture is one immutable (database, index, oracle) triple shared by many
// schedules.
type Fixture struct {
	DB     []*graph.Graph
	Idx    *index.Set
	Oracle *naivescan.Engine
}

// BuildFixture mines a connected random molecule-like database (the same
// generator family as the differential harness).
func BuildFixture(tb testing.TB, seed int64, n int) *Fixture {
	tb.Helper()
	r := rand.New(rand.NewSource(seed))
	db := make([]*graph.Graph, 0, n)
	for i := 0; i < n; i++ {
		nodes := 4 + r.Intn(6)
		g := graph.New(i)
		for v := 0; v < nodes; v++ {
			g.AddNode(nodeLabels[r.Intn(len(nodeLabels))])
		}
		for v := 1; v < nodes; v++ {
			g.MustAddEdge(v, r.Intn(v))
		}
		for k := 0; k < r.Intn(3); k++ {
			u, v := r.Intn(nodes), r.Intn(nodes)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		db = append(db, g)
	}
	res, err := mining.Mine(db, mining.Options{MinSupportRatio: 0.3, MaxSize: 6})
	if err != nil {
		tb.Fatal(err)
	}
	idx, err := index.Build(res, 0.3, 3)
	if err != nil {
		tb.Fatal(err)
	}
	oracle, err := naivescan.New(db, 2)
	if err != nil {
		tb.Fatal(err)
	}
	return &Fixture{DB: db, Idx: idx, Oracle: oracle}
}

// schedule is one deterministic chaos scenario: which faults are armed and
// how tight the service's protection knobs are.
type schedule struct {
	rules        map[faultinject.Site]faultinject.Rule
	deadline     time.Duration
	maxInFlight  int
	sessionQueue int
	cacheBytes   int64
	burst        bool // fire concurrent Runs to provoke shedding
}

func (sc schedule) String() string {
	return fmt.Sprintf("rules=%d deadline=%v inflight=%d queue=%d burst=%v",
		len(sc.rules), sc.deadline, sc.maxInFlight, sc.sessionQueue, sc.burst)
}

// genSchedule derives schedule i deterministically. Scenario kinds cycle so
// a 50-schedule run hits every fault family several times: verification
// errors, verification panics, latency under a deadline, cache/index faults,
// an overload burst, and an everything-at-once mix.
func genSchedule(i int, r *rand.Rand) schedule {
	sc := schedule{
		rules:      map[faultinject.Site]faultinject.Rule{},
		cacheBytes: 1 << 20,
	}
	if r.Intn(3) == 0 {
		sc.cacheBytes = 0 // exercise the uncached paths under faults too
	}
	switch i % 6 {
	case 0: // injected verification errors
		sc.rules[faultinject.SiteVerify] = faultinject.Rule{Every: 1 + r.Intn(3), Err: true}
	case 1: // verification panics, recovered per candidate by the pool
		sc.rules[faultinject.SiteVerify] = faultinject.Rule{Every: 1 + r.Intn(4), Panic: true}
	case 2: // slow verification under a per-action deadline: the ladder fires
		sc.rules[faultinject.SiteVerify] = faultinject.Rule{
			Every: 1 + r.Intn(2), Latency: time.Duration(200+r.Intn(800)) * time.Microsecond,
		}
		sc.deadline = time.Duration(4+r.Intn(12)) * time.Millisecond
	case 3: // cache and index probe faults: cost degrades, answers must not
		sc.rules[faultinject.SiteCache] = faultinject.Rule{Every: 1 + r.Intn(2), Err: true}
		sc.rules[faultinject.SiteIndex] = faultinject.Rule{Every: 1 + r.Intn(3), Err: true}
	case 4: // overload: tiny admission bounds plus concurrent run bursts
		sc.maxInFlight = 1 + r.Intn(2)
		sc.sessionQueue = 1
		sc.burst = true
		// Slow verification stretches each admitted Run so the burst's
		// concurrent attempts reliably collide with it and shed.
		sc.rules[faultinject.SiteVerify] = faultinject.Rule{
			Every: 1, Latency: 500 * time.Microsecond, Err: r.Intn(2) == 0,
		}
	default: // everything at once
		sc.rules[faultinject.SiteVerify] = faultinject.Rule{Every: 2 + r.Intn(3), Panic: r.Intn(2) == 0, Err: true}
		sc.rules[faultinject.SiteCache] = faultinject.Rule{Every: 2 + r.Intn(2), Err: true}
		sc.rules[faultinject.SiteIndex] = faultinject.Rule{Every: 2 + r.Intn(3), Err: true}
		sc.deadline = time.Duration(8+r.Intn(16)) * time.Millisecond
		sc.maxInFlight = 2 + r.Intn(3)
		sc.burst = r.Intn(2) == 0
	}
	return sc
}

// Run executes cfg.Schedules chaos schedules as subtests and returns the
// aggregate Totals. Any invariant violation fails t.
func Run(t *testing.T, cfg Config) Totals {
	t.Helper()
	fixtures := []*Fixture{
		BuildFixture(t, cfg.Seed, cfg.DBSize),
		BuildFixture(t, cfg.Seed+7919, cfg.DBSize),
	}
	var mu sync.Mutex
	var tot Totals
	for i := 0; i < cfg.Schedules; i++ {
		i := i
		fx := fixtures[i%len(fixtures)]
		t.Run(fmt.Sprintf("schedule-%02d", i), func(t *testing.T) {
			st := runSchedule(t, cfg, fx, i)
			mu.Lock()
			tot.Runs += st.Runs
			tot.Degraded += st.Degraded
			tot.Shed += st.Shed
			tot.WorkerPanics += st.WorkerPanics
			tot.FaultsFired += st.FaultsFired
			mu.Unlock()
		})
	}
	return tot
}

// runSchedule builds one service under one fault schedule, drives the
// scripted sessions concurrently under a deadlock watchdog, then disarms the
// injector and requires every session to answer exactly again.
func runSchedule(t *testing.T, cfg Config, fx *Fixture, i int) Totals {
	t.Helper()
	r := rand.New(rand.NewSource(cfg.Seed*1000 + int64(i)))
	sc := genSchedule(i, r)
	inj := faultinject.New()
	for site, rule := range sc.rules {
		inj.Set(site, rule)
	}
	reg := metrics.NewRegistry()
	opts := []service.Option{
		service.WithSigma(cfg.Sigma),
		service.WithVerifyWorkers(2),
		service.WithMetrics(reg),
		service.WithCandidateCache(sc.cacheBytes),
		service.WithFaultInjection(inj),
		service.WithTracing(true),
	}
	if sc.deadline > 0 {
		opts = append(opts, service.WithActionDeadline(sc.deadline))
	}
	if sc.maxInFlight > 0 {
		opts = append(opts, service.WithMaxInFlight(sc.maxInFlight))
	}
	if sc.sessionQueue > 0 {
		opts = append(opts, service.WithSessionQueue(sc.sessionQueue))
	}
	svc, err := service.New(fx.DB, fx.Idx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	drivers := make([]*driver, cfg.Sessions)
	for s := range drivers {
		drivers[s] = newDriver(t, fx, svc, cfg.Sigma, rand.New(rand.NewSource(cfg.Seed*1_000_000+int64(i)*1000+int64(s))))
	}

	// The chaos phase proper: each session scripted sequentially, sessions
	// concurrent with each other, the whole phase bounded by a watchdog (a
	// hung mutex or pool would otherwise stall the suite silently).
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for _, d := range drivers {
			d := d
			wg.Add(1)
			go func() {
				defer wg.Done()
				d.drive(cfg.Steps, sc.burst)
			}()
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatalf("schedule %d (%v): deadlock — workload did not finish within the watchdog", i, sc)
	}
	if t.Failed() {
		return Totals{}
	}

	// Recovery phase: faults disarmed, every session must converge back to
	// an exact answer, and no session state may have been lost.
	inj.Disarm()
	for _, d := range drivers {
		d.assertMirror("after chaos phase")
		d.assertExactRecovery()
	}

	var tot Totals
	for _, d := range drivers {
		tot.Runs += d.runs
		tot.Degraded += d.degraded
	}
	snap := reg.Snapshot()
	tot.Shed = snap.Counters[metrics.CounterOverloadShed]
	tot.WorkerPanics = snap.Counters[metrics.CounterWorkerPanics]
	for _, site := range []faultinject.Site{faultinject.SiteVerify, faultinject.SiteCache, faultinject.SiteIndex} {
		tot.FaultsFired += inj.Fired(site)
	}
	return tot
}

// driver scripts one session and mirrors its query exactly; the mirror is
// both the op generator's source of valid moves and the "no lost session
// state" check.
type driver struct {
	t      *testing.T
	fx     *Fixture
	svc    *service.Service
	sess   *service.Session
	mirror *query.Query
	nodes  []int
	r      *rand.Rand
	sigma  int

	runs     int64
	degraded int64
}

func newDriver(t *testing.T, fx *Fixture, svc *service.Service, sigma int, r *rand.Rand) *driver {
	t.Helper()
	sess, err := svc.Create(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	d := &driver{t: t, fx: fx, svc: svc, sess: sess, mirror: query.New(), r: r, sigma: sigma}
	d.addNode()
	d.addNode()
	return d
}

func (d *driver) addNode() int {
	label := nodeLabels[d.r.Intn(len(nodeLabels))]
	id, err := d.sess.AddNode(label)
	if err != nil {
		d.t.Errorf("session %s: AddNode: %v", d.sess.ID(), err)
		return -1
	}
	if mid := d.mirror.AddNode(label); mid != id {
		d.t.Errorf("session %s: node id diverged: service %d, mirror %d", d.sess.ID(), id, mid)
	}
	d.nodes = append(d.nodes, id)
	return id
}

// typedActionErr: every failure of an evaluating action must be one of the
// robustness layer's typed errors (admission, deadline, injected fault,
// truncated verification) — anything else is a broken contract.
func typedActionErr(err error) bool {
	return errors.Is(err, service.ErrOverloaded) ||
		errors.Is(err, service.ErrServiceClosed) ||
		errors.Is(err, core.ErrShardUnavailable) ||
		errors.Is(err, core.ErrAwaitingChoice) ||
		errors.Is(err, core.ErrEmptyQuery) ||
		errors.Is(err, core.ErrBudgetExhausted) ||
		errors.Is(err, core.ErrVerifyFaults) ||
		errors.Is(err, faultinject.ErrInjected) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// drive runs the scripted chaos workload: anchored edge adds, deletions of
// deletable steps, checked runs, and (optionally) concurrent run bursts.
func (d *driver) drive(steps int, burst bool) {
	ctx := context.Background()
	for k := 0; k < steps && !d.t.Failed(); k++ {
		switch op := d.r.Intn(10); {
		case op < 5 || d.mirror.Size() == 0:
			d.opAdd(ctx)
		case op < 7 && d.mirror.Size() >= 2:
			d.opDelete(ctx)
		case op == 7 && burst:
			d.opBurst(ctx)
		default:
			d.checkedRun(ctx)
		}
		d.assertMirror(fmt.Sprintf("after op %d", k))
	}
	d.checkedRun(ctx)
}

// opAdd mirrors difftest's anchored add: pick an endpoint already in the
// fragment so the operation is structurally valid, then reconcile the mirror
// with whatever the service actually did (a faulted add may leave the edge
// drawn with its evaluation incomplete, or not drawn at all).
func (d *driver) opAdd(ctx context.Context) {
	var u int
	if d.mirror.Size() == 0 {
		u = d.nodes[d.r.Intn(len(d.nodes))]
	} else {
		st := d.mirror.Steps()
		qe, _ := d.mirror.Edge(st[d.r.Intn(len(st))])
		if d.r.Intn(2) == 0 {
			u = qe.A
		} else {
			u = qe.B
		}
	}
	var v int
	if d.r.Intn(3) == 0 && len(d.nodes) > 2 {
		v = d.nodes[d.r.Intn(len(d.nodes))]
	} else {
		v = d.addNode()
	}
	label := edgeLabels[d.r.Intn(len(edgeLabels))]
	step, merr := d.mirror.AddLabeledEdge(u, v, label)
	if merr != nil {
		return // structurally invalid (duplicate, self-loop): skip the op
	}
	out, err := d.sess.AddLabeledEdge(ctx, u, v, label)
	switch {
	case err == nil:
		if out.Step != step {
			d.t.Errorf("session %s: step diverged: service %d, mirror %d", d.sess.ID(), out.Step, step)
		}
		if out.NeedsChoice {
			d.resolveChoice(ctx)
		}
	case typedActionErr(err):
		// The edge may or may not have been drawn before the fault hit;
		// reconcile the mirror with the service's actual state.
		if !d.serviceHasStep(step) {
			if derr := d.mirror.DeleteEdge(step); derr != nil {
				d.t.Errorf("session %s: cannot roll back mirror step %d: %v", d.sess.ID(), step, derr)
			}
		}
	default:
		d.t.Errorf("session %s: AddEdge returned untyped error: %v", d.sess.ID(), err)
	}
}

func (d *driver) opDelete(ctx context.Context) {
	var deletable []int
	for _, s := range d.mirror.Steps() {
		if d.mirror.CanDelete(s) {
			deletable = append(deletable, s)
		}
	}
	if len(deletable) == 0 {
		return
	}
	step := deletable[d.r.Intn(len(deletable))]
	_, err := d.sess.DeleteEdge(ctx, step)
	switch {
	case err == nil:
		if derr := d.mirror.DeleteEdge(step); derr != nil {
			d.t.Errorf("session %s: mirror delete of step %d failed after service accepted: %v", d.sess.ID(), step, derr)
		}
	case typedActionErr(err):
		if !d.serviceHasStep(step) { // deleted before the fault hit
			if derr := d.mirror.DeleteEdge(step); derr != nil {
				d.t.Errorf("session %s: cannot reconcile mirror after faulted delete: %v", d.sess.ID(), derr)
			}
		}
	default:
		d.t.Errorf("session %s: DeleteEdge returned untyped error: %v", d.sess.ID(), err)
	}
}

// opBurst fires concurrent Runs at the session to provoke admission
// shedding and mutex contention; every outcome must be a typed error or a
// success (the sequential checkedRun calls validate answer soundness).
func (d *driver) opBurst(ctx context.Context) {
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := d.sess.Run(ctx); err != nil && !typedActionErr(err) {
				d.t.Errorf("session %s: burst Run returned untyped error: %v", d.sess.ID(), err)
			}
		}()
	}
	wg.Wait()
}

func (d *driver) resolveChoice(ctx context.Context) {
	if _, err := d.sess.ChooseSimilarity(ctx); err != nil && !typedActionErr(err) {
		d.t.Errorf("session %s: ChooseSimilarity returned untyped error: %v", d.sess.ID(), err)
	}
}

// serviceHasStep asks the service whether the step label is currently drawn.
func (d *driver) serviceHasStep(step int) bool {
	info, err := d.sess.Describe()
	if err != nil {
		d.t.Errorf("session %s: Describe: %v", d.sess.ID(), err)
		return false
	}
	for _, s := range info.Steps {
		if s == step {
			return true
		}
	}
	return false
}

// assertMirror is the "no lost session state" invariant: the service's view
// of the query must equal the driver's mirror after every operation, no
// matter which faults fired.
func (d *driver) assertMirror(when string) {
	info, err := d.sess.Describe()
	if err != nil {
		d.t.Errorf("session %s: Describe %s: %v", d.sess.ID(), when, err)
		return
	}
	ms := d.mirror.Steps()
	if len(info.Steps) != len(ms) {
		d.t.Errorf("session %s: %s: steps diverged: service %v, mirror %v", d.sess.ID(), when, info.Steps, ms)
		return
	}
	for i := range ms {
		if info.Steps[i] != ms[i] {
			d.t.Errorf("session %s: %s: steps diverged: service %v, mirror %v", d.sess.ID(), when, info.Steps, ms)
			return
		}
	}
}

// checkedRun is the core invariant: every Run outcome is complete, flagged
// Truncated with sound bounds, or a typed error.
func (d *driver) checkedRun(ctx context.Context) {
	out, err := d.sess.RunDetailed(ctx)
	d.runs++
	if err != nil {
		if errors.Is(err, core.ErrAwaitingChoice) {
			d.resolveChoice(ctx)
			return
		}
		if !typedActionErr(err) {
			d.t.Errorf("session %s: Run returned untyped error: %v", d.sess.ID(), err)
		}
		return
	}
	info, ierr := d.sess.Describe()
	if ierr != nil {
		d.t.Errorf("session %s: Describe after Run: %v", d.sess.ID(), ierr)
		return
	}
	qg, gerr := d.sess.QueryGraph()
	if gerr != nil || qg == nil {
		d.t.Errorf("session %s: QueryGraph after successful Run: graph=%v err=%v", d.sess.ID(), qg, gerr)
		return
	}
	if out.Stage != core.StageFull {
		d.degraded++
	}
	d.verifyOutcome(out, info.SimilarityMode, qg, "chaos")
}

// verifyOutcome checks one Run answer against the oracle for the query the
// session actually holds.
func (d *driver) verifyOutcome(out core.RunOutcome, simMode bool, qg *graph.Graph, phase string) {
	CheckOutcome(d.t, d.fx, fmt.Sprintf("session %s (%s)", d.sess.ID(), phase), out, simMode, qg, d.sigma)
}

// CheckOutcome asserts the ladder contract for one Run answer: StageFull is
// exactly the oracle, cached_good only has to be flagged, and every other
// degraded stage is a flagged sound subset — true members with valid
// distance upper bounds. The fuzz target shares this with the scripted
// schedules.
func CheckOutcome(tb testing.TB, fx *Fixture, who string, out core.RunOutcome, simMode bool, qg *graph.Graph, sigma int) {
	tb.Helper()
	switch {
	case out.Stage == core.StageFull:
		if out.Truncated || out.Faults != 0 {
			tb.Errorf("%s: StageFull but truncated=%v faults=%d", who, out.Truncated, out.Faults)
		}
		if simMode {
			want, _ := fx.Oracle.Similarity(qg, sigma)
			if len(out.Results) != len(want) {
				tb.Errorf("%s: full similarity answer has %d results, oracle %d\nquery: %v",
					who, len(out.Results), len(want), qg)
				return
			}
			wantDist := make(map[int]int, len(want))
			for _, w := range want {
				wantDist[w.GraphID] = w.Distance
			}
			for _, g := range out.Results {
				if w, ok := wantDist[g.GraphID]; !ok || w != g.Distance {
					tb.Errorf("%s: full answer has (%d,%d), oracle wants distance %d (present=%v)",
						who, g.GraphID, g.Distance, w, ok)
				}
			}
		} else {
			want, _ := fx.Oracle.Containment(qg)
			if len(out.Results) != len(want) {
				tb.Errorf("%s: full containment answer has %d results, oracle %d\nquery: %v",
					who, len(out.Results), len(want), qg)
				return
			}
			inOracle := make(map[int]bool, len(want))
			for _, w := range want {
				inOracle[w] = true
			}
			for _, g := range out.Results {
				if !inOracle[g.GraphID] || g.Distance != 0 {
					tb.Errorf("%s: full containment answer has (%d,%d) not in oracle",
						who, g.GraphID, g.Distance)
				}
			}
		}
	case out.Stage == core.StageCachedGood:
		// Last known good may describe an older query revision — by
		// contract it only has to be flagged.
		if !out.Truncated {
			tb.Errorf("%s: cached_good answer not flagged Truncated", who)
		}
	default: // StagePartial or StageSimilarity: sound subset of the truth
		if !out.Truncated {
			tb.Errorf("%s: degraded stage %v not flagged Truncated", who, out.Stage)
		}
		if simMode {
			want, _ := fx.Oracle.Similarity(qg, sigma)
			wantDist := make(map[int]int, len(want))
			for _, w := range want {
				wantDist[w.GraphID] = w.Distance
			}
			for _, g := range out.Results {
				w, ok := wantDist[g.GraphID]
				if !ok {
					tb.Errorf("%s: truncated answer reports %d, not a true similarity answer\nquery: %v",
						who, g.GraphID, qg)
				} else if g.Distance < w {
					tb.Errorf("%s: truncated answer reports %d at distance %d < true %d",
						who, g.GraphID, g.Distance, w)
				}
			}
		} else {
			want, _ := fx.Oracle.Containment(qg)
			inOracle := make(map[int]bool, len(want))
			for _, w := range want {
				inOracle[w] = true
			}
			for _, g := range out.Results {
				if !inOracle[g.GraphID] || g.Distance != 0 {
					tb.Errorf("%s: truncated containment answer has (%d,%d) not in oracle",
						who, g.GraphID, g.Distance)
				}
			}
		}
	}
}

// assertExactRecovery: with the injector disarmed the session must converge
// back to a StageFull answer that matches the oracle exactly. A few retries
// are allowed — the first post-chaos Run may still degrade on a tight
// deadline before caches rewarm.
func (d *driver) assertExactRecovery() {
	ctx := context.Background()
	info, err := d.sess.Describe()
	if err != nil {
		d.t.Errorf("session %s: Describe in recovery: %v", d.sess.ID(), err)
		return
	}
	if info.QuerySize == 0 {
		return // every add was shed or faulted away; nothing to answer
	}
	if info.AwaitingChoice {
		d.resolveChoice(ctx)
	}
	for attempt := 0; attempt < 8; attempt++ {
		out, err := d.sess.RunDetailed(ctx)
		if err != nil {
			if errors.Is(err, core.ErrAwaitingChoice) {
				d.resolveChoice(ctx)
				continue
			}
			if typedActionErr(err) {
				continue
			}
			d.t.Errorf("session %s: recovery Run returned untyped error: %v", d.sess.ID(), err)
			return
		}
		if out.Stage != core.StageFull {
			continue
		}
		info, ierr := d.sess.Describe()
		qg, gerr := d.sess.QueryGraph()
		if ierr != nil || gerr != nil || qg == nil {
			d.t.Errorf("session %s: recovery state read failed: %v %v", d.sess.ID(), ierr, gerr)
			return
		}
		d.verifyOutcome(out, info.SimilarityMode, qg, "recovery")
		return
	}
	d.t.Errorf("session %s: never produced a StageFull answer after faults were disarmed", d.sess.ID())
}
