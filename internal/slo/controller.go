// Feedback controllers: small, pure decision functions over the windowed
// Report, applied to runtime knobs through Get/Set closures. The policies
// are AIMD-flavored (multiplicative back-off when a target is violated,
// additive/multiplicative growth when there is headroom and a reason to
// grow) and deterministic: the same Report sequence produces the same knob
// trajectory, which the service's controller tests pin under clock.Fake.
//
// Every applied adjustment is observable twice over: the knob's new value is
// published as an adapt_<name> gauge, adapt_adjustments_total counts the
// change, and a trace span of kind "adapt" (controller, from, to) lands in
// the journal pipeline when tracing is on.

package slo

import (
	"strconv"

	"prague/internal/metrics"
	"prague/internal/trace"
)

// Knob is one adjustable runtime parameter.
type Knob struct {
	// Name keys the adapt_<Name> gauge and trace attributes.
	Name string
	// Min and Max clamp every decision; a knob can never be driven outside
	// its declared safe range.
	Min, Max int64
	// Get reads the current value; Set applies a new one. Both must be safe
	// for concurrent use with the serving path (the knobs are atomics).
	Get func() int64
	Set func(int64)
}

// Policy maps (windowed report, current value) to the desired value. Pure:
// no side effects, no clocks, no randomness.
type Policy func(r Report, cur int64) int64

// Controller binds a knob to a policy.
type Controller struct {
	Knob
	Decide Policy
}

// Apply runs one decision cycle: read, decide, clamp, and — only when the
// value changes — set, meter, and trace. Returns (from, to, changed).
func (c *Controller) Apply(r Report, reg *metrics.Registry, tr *trace.Tracer) (int64, int64, bool) {
	cur := c.Get()
	next := c.Decide(r, cur)
	if next < c.Min {
		next = c.Min
	}
	if next > c.Max {
		next = c.Max
	}
	if next == cur {
		return cur, cur, false
	}
	c.Set(next)
	if reg != nil {
		reg.Counter(metrics.GaugeAdaptPrefix + c.Name).Set(next)
		reg.Counter(metrics.CounterAdaptAdjust).Inc()
	}
	tr.RecordEvent(trace.KindAdapt, 0, map[string]string{
		"controller": c.Name,
		"from":       strconv.FormatInt(cur, 10),
		"to":         strconv.FormatInt(next, 10),
	}, nil)
	return cur, next, true
}

// minSignal is the minimum windowed observation count a policy needs before
// acting; below it the window is noise, not signal.
const minSignal = 8

// InFlightPolicy controls the admission MaxInFlight bound against the
// declared targets: back off multiplicatively while the windowed p99 SRT
// overshoots the target (admitting less is the only lever admission has on
// latency), grow while there is latency headroom (p99 < 70% of target) but
// demand is being shed — shedding with headroom is pure lost goodput.
func InFlightPolicy(t Targets) Policy {
	target := t.P99SRT.Microseconds()
	return func(r Report, cur int64) int64 {
		srt := r.SRT()
		shed := r.Rates[RateShed.String()].Count
		if target > 0 && srt.Count >= minSignal && srt.P99US > target {
			return cur - max64(1, cur/4)
		}
		if shed > 0 && (target <= 0 || srt.Count == 0 || srt.P99US*10 <= target*7) {
			return cur + max64(1, cur/2)
		}
		return cur
	}
}

// WorkerPolicy controls the verification workpool size from windowed worker
// utilization (a Tracker gauge source named utilSource, in [0,1]): grow
// additively while the pool is saturated and latency is near or over
// target; shrink while it idles. Saturation without latency pressure is
// left alone — a busy pool meeting its SLO is just an efficient pool.
func WorkerPolicy(t Targets, utilSource string) Policy {
	target := t.P99SRT.Microseconds()
	return func(r Report, cur int64) int64 {
		util, ok := r.Sources[utilSource]
		if !ok {
			return cur
		}
		srt := r.SRT()
		hot := target <= 0 || (srt.Count >= minSignal && srt.P99US*10 >= target*8)
		if util >= 0.85 && hot {
			return cur + 1
		}
		if util <= 0.25 && cur > 1 {
			return cur - 1
		}
		return cur
	}
}

// CacheSources names the Tracker sources the cache policy reads: windowed
// hit/miss/eviction deltas (counter sources) and resident bytes (gauge).
type CacheSources struct {
	Hits, Misses, Evictions, Bytes string
}

// CachePolicy controls the candidate-cache byte budget from hit-rate
// telemetry: a poor windowed hit ratio *while the LRU is evicting* means the
// working set does not fit — double the budget; a near-perfect ratio with a
// resident footprint far below budget means over-provisioning — halve it.
// A poor ratio without evictions is cold traffic, not pressure, and is left
// alone.
func CachePolicy(src CacheSources) Policy {
	return func(r Report, cur int64) int64 {
		hits := r.Sources[src.Hits]
		misses := r.Sources[src.Misses]
		evicted := r.Sources[src.Evictions]
		lookups := hits + misses
		if lookups < minSignal {
			return cur
		}
		ratio := hits / lookups
		if ratio < 0.7 && evicted > 0 {
			return cur * 2
		}
		if bytes, ok := r.Sources[src.Bytes]; ok && ratio > 0.95 && evicted == 0 && bytes*4 < float64(cur) {
			return cur / 2
		}
		return cur
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
