// Package slo is PRAGUE's fleet-scale SLO telemetry layer: rolling-window
// latency histograms per evaluation phase and per degradation-ladder outcome
// stage, windowed event rates (admitted/shed), an SLO tracker that turns
// declared targets (p99 SRT, max shed rate) into burn rates and violation
// spans, and a tiny feedback-controller framework the service uses to turn
// runtime knobs (workpool size, admission MaxInFlight, candidate-cache byte
// budget) from nothing but this windowed telemetry.
//
// The collector is built for the hot path: a window is a ring of time slots,
// each an epoch-tagged set of atomic bucket counters. Observing costs one
// clock read, one CAS-guarded slot-epoch check, and a handful of atomic adds
// — no locks, no allocation. Slot rotation is best-effort: observations
// racing a rotation may land in a slot being recycled and be lost; this is
// telemetry, and losing a sample at a 1/slotDur boundary is the accepted
// price for a lock-free window (the same stance metrics.Histogram takes on
// torn snapshot reads). A nil or disabled *Collector no-ops every method;
// the disabled path is guarded <2% by TestSLOOverheadArtifact, the same bar
// BENCH_trace.json holds the tracer to.
//
// Cumulative counters (cache hits, worker busyness) cannot be windowed at
// the source without taxing their hot paths, so the Tracker samples them on
// its tick and differentiates: windowed rate = (cur - old)/window. That puts
// the cost on the tick (O(sources) per interval), not on the serving path.
package slo

import (
	"sort"
	"sync/atomic"
	"time"

	"prague/internal/clock"
)

// Phase identifies a latency phase with its own rolling window. The phases
// mirror PRAGUE's SRT decomposition: where does the time of a formulation
// step / Run actually go.
type Phase uint8

const (
	PhaseSpigBuild  Phase = iota // Algorithm 2: SPIG construction per step
	PhaseIndexProbe              // A²F/A²I lookups + FSG intersection
	PhaseCandCache               // shared candidate-cache fetch (hit or miss)
	PhaseVerify                  // one verification fan-out through the pool
	PhaseSRT                     // total system response time of a Run

	numPhases
)

var phaseNames = [numPhases]string{
	PhaseSpigBuild:  "spig_build",
	PhaseIndexProbe: "index_probe",
	PhaseCandCache:  "candcache",
	PhaseVerify:     "verify",
	PhaseSRT:        "srt",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Stage identifies a degradation-ladder outcome with its own SRT window, so
// "p99 of the answers we degraded" is visible separately from "p99 of the
// exact answers".
type Stage uint8

const (
	StageExact      Stage = iota // full exact containment answer
	StageTruncated               // verified-subset (partial/truncated) answer
	StageSimilarity              // similarity-bound fallback answer
	StageCached                  // last-known-good cached answer

	numStages
)

var stageNames = [numStages]string{
	StageExact:      "exact",
	StageTruncated:  "truncated",
	StageSimilarity: "similarity",
	StageCached:     "cached",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Rate identifies a windowed event counter.
type Rate uint8

const (
	RateAdmitted Rate = iota // actions admitted past admission control
	RateShed                 // actions rejected by admission control

	numRates
)

var rateNames = [numRates]string{
	RateAdmitted: "admitted",
	RateShed:     "shed",
}

func (r Rate) String() string {
	if int(r) < len(rateNames) {
		return rateNames[r]
	}
	return "unknown"
}

// Window bucketing: 1-2-5 per decade from 1µs to 10s. Finer than the
// metrics package's decade buckets because windowed p99s drive controller
// decisions — a 10x-wide containing bucket would make the interpolated p99
// useless as an error signal.
var bounds = func() []time.Duration {
	var b []time.Duration
	for base := time.Microsecond; base <= 10*time.Second; base *= 10 {
		for _, m := range []time.Duration{1, 2, 5} {
			if v := base * m; v <= 10*time.Second {
				b = append(b, v)
			}
		}
	}
	return b
}()

const numSlots = 8 // slots per window; window duration = numSlots * slotDur

// histSlot is one time slice of one phase/stage window. seq tags which slot
// period the counters belong to; a slot whose seq is stale is recycled in
// place by the first observer of the new period.
type histSlot struct {
	seq     atomic.Int64
	count   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	buckets []atomic.Int64 // len(bounds)+1, last = overflow
}

func (s *histSlot) reset() {
	s.count.Store(0)
	s.sumNS.Store(0)
	s.maxNS.Store(0)
	for i := range s.buckets {
		s.buckets[i].Store(0)
	}
}

// window is a ring of slots covering the last numSlots slot periods.
type window struct {
	slots [numSlots]histSlot
}

func (w *window) init() {
	for i := range w.slots {
		w.slots[i].seq.Store(-1)
		w.slots[i].buckets = make([]atomic.Int64, len(bounds)+1)
	}
}

// rotate claims the slot for seq, recycling it if it still holds an older
// period. Returns the slot (always usable; best-effort under races).
func rotate(s *histSlot, seq int64) {
	for {
		cur := s.seq.Load()
		if cur == seq {
			return
		}
		if s.seq.CompareAndSwap(cur, seq) {
			s.reset()
			return
		}
	}
}

func (w *window) observe(seq int64, d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := &w.slots[seq%numSlots]
	rotate(s, seq)
	i := sort.Search(len(bounds), func(i int) bool { return d <= bounds[i] })
	s.buckets[i].Add(1)
	s.count.Add(1)
	s.sumNS.Add(int64(d))
	for {
		cur := s.maxNS.Load()
		if int64(d) <= cur || s.maxNS.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Dist is the merged view of one window: observation count and interpolated
// quantiles over the last numSlots slot periods. All durations are
// microseconds so the struct JSON-marshals without float drift.
type Dist struct {
	Count  int64 `json:"count"`
	P50US  int64 `json:"p50_us"`
	P95US  int64 `json:"p95_us"`
	P99US  int64 `json:"p99_us"`
	MeanUS int64 `json:"mean_us"`
	MaxUS  int64 `json:"max_us"`
}

func (w *window) merged(nowSeq int64) Dist {
	counts := make([]int64, len(bounds)+1)
	var d Dist
	for i := range w.slots {
		s := &w.slots[i]
		seq := s.seq.Load()
		if seq < 0 || seq > nowSeq || nowSeq-seq >= numSlots {
			continue
		}
		d.Count += s.count.Load()
		d.MeanUS += s.sumNS.Load() // ns sum for now; divided below
		if m := s.maxNS.Load() / 1e3; m > d.MaxUS {
			d.MaxUS = m
		}
		for j := range counts {
			counts[j] += s.buckets[j].Load()
		}
	}
	if d.Count == 0 {
		d.MeanUS = 0
		return d
	}
	d.MeanUS = d.MeanUS / d.Count / 1e3
	d.P50US = quantileUS(counts, d.Count, 0.50)
	d.P95US = quantileUS(counts, d.Count, 0.95)
	d.P99US = quantileUS(counts, d.Count, 0.99)
	// Interpolation places a quantile inside its containing bucket, which can
	// overshoot the true maximum when the tail bucket is sparse; the window
	// tracks the exact max, so clamp to it.
	for _, q := range []*int64{&d.P50US, &d.P95US, &d.P99US} {
		if *q > d.MaxUS {
			*q = d.MaxUS
		}
	}
	return d
}

// quantileUS estimates the q-quantile in microseconds by linear
// interpolation within the containing bucket (the histogram_quantile
// estimate, as in prague/internal/metrics).
func quantileUS(counts []int64, total int64, q float64) int64 {
	rank := q * float64(total)
	var seen int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(seen+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = float64(bounds[i-1])
			}
			hi := float64(10*time.Second) * 2
			if i < len(bounds) {
				hi = float64(bounds[i])
			}
			frac := (rank - float64(seen)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return int64((lo + (hi-lo)*frac) / 1e3)
		}
		seen += c
	}
	return int64(bounds[len(bounds)-1] / 1e3)
}

// rateSlot / rateWindow: the same ring for plain event counts.
type rateSlot struct {
	seq atomic.Int64
	n   atomic.Int64
}

type rateWindow struct {
	slots [numSlots]rateSlot
}

func (w *rateWindow) init() {
	for i := range w.slots {
		w.slots[i].seq.Store(-1)
	}
}

func (w *rateWindow) add(seq, delta int64) {
	s := &w.slots[seq%numSlots]
	for {
		cur := s.seq.Load()
		if cur == seq {
			break
		}
		if s.seq.CompareAndSwap(cur, seq) {
			s.n.Store(0)
			break
		}
	}
	s.n.Add(delta)
}

func (w *rateWindow) sum(nowSeq int64) int64 {
	var n int64
	for i := range w.slots {
		s := &w.slots[i]
		seq := s.seq.Load()
		if seq < 0 || seq > nowSeq || nowSeq-seq >= numSlots {
			continue
		}
		n += s.n.Load()
	}
	return n
}

// RateInfo is the merged view of one rate window.
type RateInfo struct {
	Count  int64   `json:"count"`
	PerSec float64 `json:"per_sec"`
}

// DefaultWindow is the rolling-window span when WithSLO is used without an
// explicit window.
const DefaultWindow = 5 * time.Second

// Collector owns the rolling windows. All Observe*/Add methods are safe for
// unbounded concurrency; a nil or disabled Collector no-ops.
type Collector struct {
	enabled atomic.Bool
	clk     clock.Clock
	epoch   time.Time // construction instant; slot seq = Since(epoch)/slotDur
	slotDur time.Duration

	phases [numPhases]window
	stages [numStages]window
	rates  [numRates]rateWindow
}

// NewCollector creates an enabled collector whose windows span roughly
// `window` (clamped to ≥ 80ms so each of the 8 slots covers ≥ 10ms), using
// clk for slot rotation — a clock.Fake makes the windows fully
// deterministic in tests.
func NewCollector(clk clock.Clock, window time.Duration) *Collector {
	if clk == nil {
		clk = clock.Real{}
	}
	if window <= 0 {
		window = DefaultWindow
	}
	if window < 80*time.Millisecond {
		window = 80 * time.Millisecond
	}
	c := &Collector{
		clk:     clk,
		epoch:   clk.Now(),
		slotDur: window / numSlots,
	}
	for i := range c.phases {
		c.phases[i].init()
	}
	for i := range c.stages {
		c.stages[i].init()
	}
	for i := range c.rates {
		c.rates[i].init()
	}
	c.enabled.Store(true)
	return c
}

// Window returns the collector's rolling-window span.
func (c *Collector) Window() time.Duration {
	if c == nil {
		return 0
	}
	return c.slotDur * numSlots
}

// Enabled reports whether the collector records. Nil-safe.
func (c *Collector) Enabled() bool { return c != nil && c.enabled.Load() }

// SetEnabled flips recording at runtime. Nil-safe. Disabling leaves stale
// slots in place; they age out of every merged view by sequence.
func (c *Collector) SetEnabled(on bool) {
	if c != nil {
		c.enabled.Store(on)
	}
}

func (c *Collector) seqNow() int64 {
	return int64(c.clk.Now().Sub(c.epoch) / c.slotDur)
}

// ObservePhase records one phase duration into its rolling window.
func (c *Collector) ObservePhase(p Phase, d time.Duration) {
	if c == nil || !c.enabled.Load() || p >= numPhases {
		return
	}
	c.phases[p].observe(c.seqNow(), d)
}

// ObserveStage records one Run's SRT into its outcome stage's window.
func (c *Collector) ObserveStage(s Stage, d time.Duration) {
	if c == nil || !c.enabled.Load() || s >= numStages {
		return
	}
	c.stages[s].observe(c.seqNow(), d)
}

// AddRate counts n events on a rate window.
func (c *Collector) AddRate(r Rate, n int64) {
	if c == nil || !c.enabled.Load() || r >= numRates {
		return
	}
	c.rates[r].add(c.seqNow(), n)
}

// PhaseDist returns the merged rolling-window view of one phase.
func (c *Collector) PhaseDist(p Phase) Dist {
	if c == nil || p >= numPhases {
		return Dist{}
	}
	return c.phases[p].merged(c.seqNow())
}

// StageDist returns the merged rolling-window view of one outcome stage.
func (c *Collector) StageDist(s Stage) Dist {
	if c == nil || s >= numStages {
		return Dist{}
	}
	return c.stages[s].merged(c.seqNow())
}

// RateCount returns the merged windowed event count of one rate.
func (c *Collector) RateCount(r Rate) int64 {
	if c == nil || r >= numRates {
		return 0
	}
	return c.rates[r].sum(c.seqNow())
}
