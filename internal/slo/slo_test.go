package slo

import (
	"sync"
	"testing"
	"time"

	"prague/internal/clock"
	"prague/internal/metrics"
	"prague/internal/trace"
)

func fakeClock() *clock.Fake {
	return clock.NewFake(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
}

func TestCollectorWindowQuantiles(t *testing.T) {
	fc := fakeClock()
	c := NewCollector(fc, 800*time.Millisecond) // slotDur = 100ms

	for i := 0; i < 95; i++ {
		c.ObservePhase(PhaseSRT, time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		c.ObservePhase(PhaseSRT, 600*time.Millisecond)
	}

	d := c.PhaseDist(PhaseSRT)
	if d.Count != 100 {
		t.Fatalf("count = %d, want 100", d.Count)
	}
	// p50 must sit in the 1ms bucket (bounds 500µs..1ms), p99 in the
	// 500ms..1s bucket holding the five-sample tail.
	if d.P50US < 500 || d.P50US > 1000 {
		t.Fatalf("p50 = %dµs, want within (500µs, 1ms]", d.P50US)
	}
	if d.P99US < 500_000 || d.P99US > 1_000_000 {
		t.Fatalf("p99 = %dµs, want within (500ms, 1s]", d.P99US)
	}
	if d.MaxUS != 600_000 {
		t.Fatalf("max = %dµs, want 600ms", d.MaxUS)
	}
}

func TestCollectorWindowExpiry(t *testing.T) {
	fc := fakeClock()
	c := NewCollector(fc, 800*time.Millisecond)

	c.ObservePhase(PhaseSRT, time.Millisecond)
	c.AddRate(RateShed, 3)
	if got := c.PhaseDist(PhaseSRT).Count; got != 1 {
		t.Fatalf("fresh count = %d", got)
	}
	if got := c.RateCount(RateShed); got != 3 {
		t.Fatalf("fresh rate = %d", got)
	}

	// Half a window later both are still visible; a full window later the
	// slots have aged out without any observer having to recycle them.
	fc.Advance(400 * time.Millisecond)
	if got := c.PhaseDist(PhaseSRT).Count; got != 1 {
		t.Fatalf("half-window count = %d", got)
	}
	fc.Advance(500 * time.Millisecond)
	if got := c.PhaseDist(PhaseSRT).Count; got != 0 {
		t.Fatalf("expired count = %d", got)
	}
	if got := c.RateCount(RateShed); got != 0 {
		t.Fatalf("expired rate = %d", got)
	}

	// Slot reuse: a new observation in the recycled ring slot replaces the
	// stale counters rather than adding to them.
	c.ObservePhase(PhaseSRT, 2*time.Millisecond)
	d := c.PhaseDist(PhaseSRT)
	if d.Count != 1 || d.MaxUS != 2000 {
		t.Fatalf("recycled slot dist = %+v", d)
	}
}

func TestCollectorDisabledAndNil(t *testing.T) {
	var nilC *Collector
	nilC.ObservePhase(PhaseSRT, time.Second) // must not panic
	nilC.ObserveStage(StageExact, time.Second)
	nilC.AddRate(RateShed, 1)
	if nilC.Enabled() || nilC.Window() != 0 {
		t.Fatal("nil collector must be disabled with zero window")
	}
	if d := nilC.PhaseDist(PhaseSRT); d.Count != 0 {
		t.Fatalf("nil dist = %+v", d)
	}

	c := NewCollector(fakeClock(), time.Second)
	c.SetEnabled(false)
	c.ObservePhase(PhaseSRT, time.Second)
	if d := c.PhaseDist(PhaseSRT); d.Count != 0 {
		t.Fatalf("disabled collector recorded: %+v", d)
	}
	c.SetEnabled(true)
	c.ObservePhase(PhaseSRT, time.Second)
	if d := c.PhaseDist(PhaseSRT); d.Count != 1 {
		t.Fatalf("re-enabled collector dist = %+v", d)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	fc := fakeClock()
	c := NewCollector(fc, time.Second)
	var wg sync.WaitGroup
	const goroutines, each = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.ObservePhase(PhaseVerify, time.Duration(i)*time.Microsecond)
				c.AddRate(RateAdmitted, 1)
			}
		}()
	}
	wg.Wait()
	// No slot rotation happened (fake clock frozen), so nothing may be lost.
	if d := c.PhaseDist(PhaseVerify); d.Count != goroutines*each {
		t.Fatalf("count = %d, want %d", d.Count, goroutines*each)
	}
	if n := c.RateCount(RateAdmitted); n != goroutines*each {
		t.Fatalf("rate = %d, want %d", n, goroutines*each)
	}
}

func TestTrackerBurnAndViolation(t *testing.T) {
	fc := fakeClock()
	c := NewCollector(fc, 800*time.Millisecond)
	reg := metrics.NewRegistry()
	tr := trace.New(trace.Options{Enabled: true, Registry: reg})
	tk := NewTracker(c, Targets{P99SRT: 10 * time.Millisecond, MaxShedRate: 0.5}, tr, reg)

	for i := 0; i < 50; i++ {
		c.ObservePhase(PhaseSRT, time.Millisecond)
	}
	c.AddRate(RateAdmitted, 50)
	r := tk.Tick(fc.Now())
	if r.Violating || r.Violations != 0 {
		t.Fatalf("in-SLO tick flagged violating: %+v", r)
	}
	if r.BurnP99 <= 0 || r.BurnP99 > 0.2 {
		t.Fatalf("burn p99 = %v, want small and positive", r.BurnP99)
	}

	// Push p99 over target: every observation now takes 40ms > 10ms target.
	fc.Advance(100 * time.Millisecond)
	for i := 0; i < 100; i++ {
		c.ObservePhase(PhaseSRT, 40*time.Millisecond)
	}
	r = tk.Tick(fc.Now())
	if !r.Violating || r.Violations != 1 {
		t.Fatalf("overload tick not violating: %+v", r)
	}
	if r.BurnP99 < 1 {
		t.Fatalf("burn p99 = %v, want ≥ 1", r.BurnP99)
	}
	if got := reg.Counter(metrics.CounterSLOViolations).Value(); got != 1 {
		t.Fatalf("slo_violations_total = %d", got)
	}

	// A second violating tick extends the same violation (no new onset) and
	// accumulates violation time.
	fc.Advance(100 * time.Millisecond)
	for i := 0; i < 100; i++ {
		c.ObservePhase(PhaseSRT, 40*time.Millisecond)
	}
	r = tk.Tick(fc.Now())
	if r.Violations != 1 {
		t.Fatalf("second violating tick opened a new violation: %+v", r)
	}
	if r.ViolationSec <= 0 {
		t.Fatalf("violation time not accumulating: %+v", r)
	}

	// The violation span landed in the trace journal with the arithmetic.
	spans := tr.SlowSpans()
	found := false
	for _, sp := range spans {
		if sp.Kind == trace.KindSLOViolation.String() {
			found = true
			if sp.Attrs["p99_target_us"] != "10000" {
				t.Fatalf("violation span attrs = %v", sp.Attrs)
			}
		}
	}
	if !found {
		t.Fatalf("no slo_violation span in journal: %d spans", len(spans))
	}

	// Recovery: stop observing, let the window drain, shed target intact.
	fc.Advance(2 * time.Second)
	r = tk.Tick(fc.Now())
	if r.Violating {
		t.Fatalf("drained window still violating: %+v", r)
	}
}

func TestTrackerShedRateTarget(t *testing.T) {
	fc := fakeClock()
	c := NewCollector(fc, 800*time.Millisecond)
	tk := NewTracker(c, Targets{MaxShedRate: 0.10}, nil, nil)

	c.AddRate(RateAdmitted, 80)
	c.AddRate(RateShed, 20)
	r := tk.Tick(fc.Now())
	if r.ShedRate != 0.2 {
		t.Fatalf("shed rate = %v, want 0.2", r.ShedRate)
	}
	if !r.Violating || r.BurnShed != 2.0 {
		t.Fatalf("shed violation not flagged: %+v", r)
	}
}

func TestTrackerSources(t *testing.T) {
	fc := fakeClock()
	c := NewCollector(fc, 800*time.Millisecond)
	tk := NewTracker(c, Targets{}, nil, nil)

	var cum int64
	gaugeVal := 0.5
	tk.AddCounterSource("hits", func() int64 { return cum })
	tk.AddGaugeSource("util", func() float64 { return gaugeVal })

	cum = 100
	tk.Tick(fc.Now())
	fc.Advance(200 * time.Millisecond)
	cum, gaugeVal = 160, 1.0
	r := tk.Tick(fc.Now())

	// Counter source: windowed delta (both samples in window → 160-100).
	if got := r.Sources["hits"]; got != 60 {
		t.Fatalf("hits delta = %v, want 60", got)
	}
	// Gauge source: mean of in-window samples (0.5 and 1.0).
	if got := r.Sources["util"]; got != 0.75 {
		t.Fatalf("util mean = %v, want 0.75", got)
	}

	// Samples outside the window stop contributing.
	fc.Advance(2 * time.Second)
	cum = 200
	r = tk.Tick(fc.Now())
	if got := r.Sources["hits"]; got != 40 {
		t.Fatalf("post-gap hits delta = %v, want 40 (200-160)", got)
	}
	if got := r.Sources["util"]; got != 1.0 {
		t.Fatalf("post-gap util mean = %v, want 1.0", got)
	}
}

func TestControllerApplyClampAndMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := trace.New(trace.Options{Enabled: true, Registry: reg})
	var knob int64 = 10
	c := &Controller{
		Knob: Knob{
			Name: "max_inflight",
			Min:  2, Max: 16,
			Get: func() int64 { return knob },
			Set: func(v int64) { knob = v },
		},
		Decide: func(r Report, cur int64) int64 { return cur * 4 },
	}
	from, to, changed := c.Apply(Report{}, reg, tr)
	if !changed || from != 10 || to != 16 || knob != 16 {
		t.Fatalf("apply = (%d,%d,%v), knob=%d; want clamp to 16", from, to, changed, knob)
	}
	if got := reg.Counter(metrics.GaugeAdaptPrefix + "max_inflight").Value(); got != 16 {
		t.Fatalf("adapt gauge = %d", got)
	}
	if got := reg.Counter(metrics.CounterAdaptAdjust).Value(); got != 1 {
		t.Fatalf("adapt_adjustments_total = %d", got)
	}
	// At the clamp ceiling the same decision is a no-op: no second metric.
	if _, _, changed := c.Apply(Report{}, reg, tr); changed {
		t.Fatal("no-op decision reported as change")
	}
	if got := reg.Counter(metrics.CounterAdaptAdjust).Value(); got != 1 {
		t.Fatalf("no-op bumped adapt_adjustments_total to %d", got)
	}
	// The adjustment span reached the journal pipeline (threshold 0).
	found := false
	for _, sp := range tr.SlowSpans() {
		if sp.Kind == trace.KindAdapt.String() && sp.Attrs["controller"] == "max_inflight" {
			found = true
		}
	}
	if !found {
		t.Fatal("no adapt span recorded")
	}
}

func report(srt Dist, shed, admitted int64, sources map[string]float64) Report {
	r := Report{
		Phases: map[string]Dist{PhaseSRT.String(): srt},
		Rates: map[string]RateInfo{
			RateShed.String():     {Count: shed},
			RateAdmitted.String(): {Count: admitted},
		},
		Sources: sources,
	}
	if total := shed + admitted; total > 0 {
		r.ShedRate = float64(shed) / float64(total)
	}
	return r
}

func TestInFlightPolicy(t *testing.T) {
	p := InFlightPolicy(Targets{P99SRT: 10 * time.Millisecond})

	// Overshooting p99 → multiplicative back-off.
	r := report(Dist{Count: 100, P99US: 20_000}, 0, 100, nil)
	if got := p(r, 16); got != 12 {
		t.Fatalf("overshoot: %d, want 12", got)
	}
	// Headroom + shedding → growth.
	r = report(Dist{Count: 100, P99US: 2_000}, 10, 100, nil)
	if got := p(r, 16); got != 24 {
		t.Fatalf("headroom+shed: %d, want 24", got)
	}
	// Headroom, no shedding → hold.
	r = report(Dist{Count: 100, P99US: 2_000}, 0, 100, nil)
	if got := p(r, 16); got != 16 {
		t.Fatalf("steady: %d, want 16", got)
	}
	// Too little signal → hold even when apparently overshooting.
	r = report(Dist{Count: 3, P99US: 50_000}, 0, 3, nil)
	if got := p(r, 16); got != 16 {
		t.Fatalf("thin signal: %d, want 16", got)
	}
}

func TestWorkerPolicy(t *testing.T) {
	p := WorkerPolicy(Targets{P99SRT: 10 * time.Millisecond}, "util")

	// Saturated and near target → grow by one.
	r := report(Dist{Count: 100, P99US: 9_000}, 0, 100, map[string]float64{"util": 0.95})
	if got := p(r, 4); got != 5 {
		t.Fatalf("saturated: %d, want 5", got)
	}
	// Saturated but far under target → hold (efficient, not pressured).
	r = report(Dist{Count: 100, P99US: 1_000}, 0, 100, map[string]float64{"util": 0.95})
	if got := p(r, 4); got != 4 {
		t.Fatalf("efficient: %d, want 4", got)
	}
	// Idle → shrink by one.
	r = report(Dist{Count: 100, P99US: 1_000}, 0, 100, map[string]float64{"util": 0.1})
	if got := p(r, 4); got != 3 {
		t.Fatalf("idle: %d, want 3", got)
	}
	// No utilization source → hold.
	r = report(Dist{Count: 100, P99US: 1_000}, 0, 100, nil)
	if got := p(r, 4); got != 4 {
		t.Fatalf("sourceless: %d, want 4", got)
	}
}

func TestCachePolicy(t *testing.T) {
	src := CacheSources{Hits: "h", Misses: "m", Evictions: "e", Bytes: "b"}
	p := CachePolicy(src)

	// Thrashing (poor ratio, evicting) → double.
	r := report(Dist{}, 0, 0, map[string]float64{"h": 30, "m": 70, "e": 5, "b": 1000})
	if got := p(r, 1000); got != 2000 {
		t.Fatalf("thrash: %d, want 2000", got)
	}
	// Over-provisioned (near-perfect ratio, tiny residency) → halve.
	r = report(Dist{}, 0, 0, map[string]float64{"h": 99, "m": 1, "e": 0, "b": 100})
	if got := p(r, 1000); got != 500 {
		t.Fatalf("overprovisioned: %d, want 500", got)
	}
	// Cold traffic (poor ratio, no evictions) → hold.
	r = report(Dist{}, 0, 0, map[string]float64{"h": 30, "m": 70, "e": 0, "b": 1000})
	if got := p(r, 1000); got != 1000 {
		t.Fatalf("cold: %d, want 1000", got)
	}
	// Too little traffic → hold.
	r = report(Dist{}, 0, 0, map[string]float64{"h": 2, "m": 1, "e": 9, "b": 1000})
	if got := p(r, 1000); got != 1000 {
		t.Fatalf("thin: %d, want 1000", got)
	}
}

// TestControllerDeterminism drives the same synthetic report sequence twice
// and requires identical knob trajectories — the controller layer has no
// hidden clocks or randomness.
func TestControllerDeterminism(t *testing.T) {
	run := func() []int64 {
		var knob int64 = 8
		c := &Controller{
			Knob: Knob{Name: "k", Min: 1, Max: 128,
				Get: func() int64 { return knob },
				Set: func(v int64) { knob = v }},
			Decide: InFlightPolicy(Targets{P99SRT: 10 * time.Millisecond}),
		}
		seq := []Report{
			report(Dist{Count: 50, P99US: 2_000}, 5, 50, nil),  // grow
			report(Dist{Count: 50, P99US: 2_000}, 5, 50, nil),  // grow
			report(Dist{Count: 50, P99US: 30_000}, 0, 50, nil), // back off
			report(Dist{Count: 2, P99US: 30_000}, 0, 2, nil),   // hold
			report(Dist{Count: 50, P99US: 1_000}, 1, 50, nil),  // grow
		}
		var traj []int64
		for _, r := range seq {
			c.Apply(r, nil, nil)
			traj = append(traj, knob)
		}
		return traj
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectory diverged at %d: %v vs %v", i, a, b)
		}
	}
	want := []int64{12, 18, 14, 14, 21}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("trajectory = %v, want %v", a, want)
		}
	}
}
