// The SLO tracker: declared targets evaluated against the collector's
// rolling windows on a periodic tick. Each tick samples the registered
// cumulative sources (differentiating them into windowed deltas), computes
// burn rates, and — while a target is violated — counts the violation and
// records a violation span into the trace journal so "when and why were we
// out of SLO" is answerable from the same surface as "why was that click
// slow".

package slo

import (
	"strconv"
	"sync"
	"time"

	"prague/internal/metrics"
	"prague/internal/trace"
)

// Targets declares the service-level objectives the tracker enforces. The
// zero value declares nothing: the tracker still produces windowed reports
// but never flags a violation.
type Targets struct {
	// P99SRT is the target 99th-percentile system response time over the
	// rolling window (0: no latency target).
	P99SRT time.Duration
	// MaxShedRate is the tolerated fraction of actions shed by admission
	// control over the rolling window, in [0,1] (0: no shed target).
	MaxShedRate float64
}

func (t Targets) zero() bool { return t.P99SRT <= 0 && t.MaxShedRate <= 0 }

// Report is a point-in-time view of the rolling windows plus the SLO
// evaluation — what /slo serves and what the controllers read. Everything a
// controller consumes lives here: controllers never touch the service.
type Report struct {
	Enabled  bool  `json:"enabled"`
	WindowMS int64 `json:"window_ms"`

	Phases map[string]Dist     `json:"phases,omitempty"`
	Stages map[string]Dist     `json:"stages,omitempty"`
	Rates  map[string]RateInfo `json:"rates,omitempty"`

	// ShedRate is shed/(admitted+shed) over the window; 0 with no traffic.
	ShedRate float64 `json:"shed_rate"`

	// Sources holds the sampled auxiliary signals: windowed deltas for
	// counter sources, window means for gauge sources, keyed by source name.
	Sources map[string]float64 `json:"sources,omitempty"`

	// SLO evaluation. Burn rates are observed/target (1.0 = exactly on
	// target, >1 = violating); 0 when the corresponding target is unset.
	P99TargetUS  int64   `json:"p99_target_us,omitempty"`
	MaxShedRate  float64 `json:"max_shed_rate,omitempty"`
	BurnP99      float64 `json:"burn_p99"`
	BurnShed     float64 `json:"burn_shed"`
	Violating    bool    `json:"violating"`
	Violations   int64   `json:"violations_total"`
	ViolationSec float64 `json:"violation_sec"`

	// Controllers maps controller name to current knob value (filled by the
	// service layer, which owns the knobs).
	Controllers map[string]int64 `json:"controllers,omitempty"`
}

// SRT returns the total-SRT phase distribution.
func (r Report) SRT() Dist { return r.Phases[PhaseSRT.String()] }

const maxSamples = 64 // per-source sample ring (ticks retained)

type sourceSample struct {
	at  time.Time
	val float64
}

type source struct {
	name    string
	counter func() int64   // cumulative; windowed delta reported
	gauge   func() float64 // sampled; window mean reported
	ring    []sourceSample // newest last, len ≤ maxSamples
}

// windowed reduces the ring against the window [now-window, now]: counter
// sources report newest - oldest-in-window; gauge sources report the mean of
// in-window samples.
func (s *source) windowed(now time.Time, window time.Duration) (float64, bool) {
	cut := now.Add(-window)
	first := -1
	for i := range s.ring {
		if !s.ring[i].at.Before(cut) {
			first = i
			break
		}
	}
	if first < 0 {
		return 0, false
	}
	in := s.ring[first:]
	if len(in) == 0 {
		return 0, false
	}
	if s.counter != nil {
		// Delta from just before the window when available, so a window
		// fully covered by samples reports the true in-window delta.
		base := in[0].val
		if first > 0 {
			base = s.ring[first-1].val
		}
		return in[len(in)-1].val - base, true
	}
	var sum float64
	for _, smp := range in {
		sum += smp.val
	}
	return sum / float64(len(in)), true
}

// Tracker evaluates Targets against a Collector. Tick and Report are safe
// for concurrent use; AddCounterSource/AddGaugeSource must be called before
// the first Tick (construction-time wiring, like workpool.Pool.OnBatch).
type Tracker struct {
	col     *Collector
	targets Targets
	tracer  *trace.Tracer     // violation spans; nil-safe
	reg     *metrics.Registry // slo_* metrics; nil keeps the tracker standalone
	violCtr *metrics.Counter

	mu          sync.Mutex
	sources     []*source
	violations  int64
	violationNS int64 // cumulative nanoseconds spent violating
	violSince   time.Time
	lastTick    time.Time
}

// NewTracker wires a tracker over col. tracer and reg may be nil.
func NewTracker(col *Collector, t Targets, tracer *trace.Tracer, reg *metrics.Registry) *Tracker {
	counter := func(name string) *metrics.Counter {
		if reg == nil {
			return &metrics.Counter{}
		}
		return reg.Counter(name)
	}
	return &Tracker{
		col:     col,
		targets: t,
		tracer:  tracer,
		reg:     reg,
		violCtr: counter(metrics.CounterSLOViolations),
	}
}

// Targets returns the declared targets.
func (tk *Tracker) Targets() Targets {
	if tk == nil {
		return Targets{}
	}
	return tk.targets
}

// AddCounterSource registers a cumulative counter to sample each tick; the
// report exposes its windowed delta under name.
func (tk *Tracker) AddCounterSource(name string, fn func() int64) {
	tk.mu.Lock()
	tk.sources = append(tk.sources, &source{name: name, counter: fn})
	tk.mu.Unlock()
}

// AddGaugeSource registers an instantaneous gauge to sample each tick; the
// report exposes its window mean under name.
func (tk *Tracker) AddGaugeSource(name string, fn func() float64) {
	tk.mu.Lock()
	tk.sources = append(tk.sources, &source{name: name, gauge: fn})
	tk.mu.Unlock()
}

// Tick samples the sources at now, evaluates the targets, and returns the
// report. While violating, each tick increments slo_violations_total once at
// the violation's onset, accumulates violation time, and records a
// slo_violation span (with the offending windowed numbers as attributes)
// into the trace journal.
func (tk *Tracker) Tick(now time.Time) Report {
	if tk == nil {
		return Report{}
	}
	tk.mu.Lock()
	for _, s := range tk.sources {
		var v float64
		if s.counter != nil {
			v = float64(s.counter())
		} else {
			v = s.gauge()
		}
		s.ring = append(s.ring, sourceSample{at: now, val: v})
		if len(s.ring) > maxSamples {
			s.ring = s.ring[len(s.ring)-maxSamples:]
		}
	}
	tk.mu.Unlock()

	r := tk.buildReport(now)

	if tk.targets.zero() {
		tk.mu.Lock()
		tk.lastTick = now
		tk.mu.Unlock()
		return r
	}

	tk.mu.Lock()
	wasViolating := !tk.violSince.IsZero()
	if r.Violating {
		if !wasViolating {
			tk.violSince = now
			tk.violations++
			tk.violCtr.Inc()
		}
		if !tk.lastTick.IsZero() && wasViolating {
			tk.violationNS += int64(now.Sub(tk.lastTick))
		}
	} else if wasViolating {
		if !tk.lastTick.IsZero() {
			tk.violationNS += int64(now.Sub(tk.lastTick))
		}
		tk.violSince = time.Time{}
	}
	tk.lastTick = now
	violations, violNS := tk.violations, tk.violationNS
	tk.mu.Unlock()

	r.Violations = violations
	r.ViolationSec = float64(violNS) / 1e9

	if r.Violating {
		// One violation span per violating tick: duration = the window's
		// observed p99 (so journal ordering by duration stays meaningful),
		// attributes = the SLO arithmetic.
		srt := r.SRT()
		tk.tracer.RecordEvent(trace.KindSLOViolation,
			time.Duration(srt.P99US)*time.Microsecond,
			map[string]string{
				"p99_us":        strconv.FormatInt(srt.P99US, 10),
				"p99_target_us": strconv.FormatInt(r.P99TargetUS, 10),
				"shed_rate":     strconv.FormatFloat(r.ShedRate, 'f', 4, 64),
				"max_shed_rate": strconv.FormatFloat(r.MaxShedRate, 'f', 4, 64),
				"burn_p99":      strconv.FormatFloat(r.BurnP99, 'f', 2, 64),
				"burn_shed":     strconv.FormatFloat(r.BurnShed, 'f', 2, 64),
			},
			map[string]int64{"window_srt_count": srt.Count})
	}
	return r
}

// Report builds the current report without sampling sources or mutating
// violation state — the read-only path behind /slo and praguecli slo.
func (tk *Tracker) Report(now time.Time) Report {
	if tk == nil {
		return Report{}
	}
	r := tk.buildReport(now)
	tk.mu.Lock()
	r.Violations = tk.violations
	r.ViolationSec = float64(tk.violationNS) / 1e9
	tk.mu.Unlock()
	return r
}

func (tk *Tracker) buildReport(now time.Time) Report {
	col := tk.col
	r := Report{
		Enabled:  col.Enabled(),
		WindowMS: col.Window().Milliseconds(),
		Phases:   make(map[string]Dist, int(numPhases)),
		Stages:   make(map[string]Dist, int(numStages)),
		Rates:    make(map[string]RateInfo, int(numRates)),
		Sources:  map[string]float64{},
	}
	for p := Phase(0); p < numPhases; p++ {
		r.Phases[p.String()] = col.PhaseDist(p)
	}
	for s := Stage(0); s < numStages; s++ {
		r.Stages[s.String()] = col.StageDist(s)
	}
	winSec := col.Window().Seconds()
	for rt := Rate(0); rt < numRates; rt++ {
		n := col.RateCount(rt)
		info := RateInfo{Count: n}
		if winSec > 0 {
			info.PerSec = float64(n) / winSec
		}
		r.Rates[rt.String()] = info
	}
	admitted := r.Rates[RateAdmitted.String()].Count
	shed := r.Rates[RateShed.String()].Count
	if total := admitted + shed; total > 0 {
		r.ShedRate = float64(shed) / float64(total)
	}

	tk.mu.Lock()
	for _, s := range tk.sources {
		if v, ok := s.windowed(now, col.Window()); ok {
			r.Sources[s.name] = v
		}
	}
	tk.mu.Unlock()

	r.P99TargetUS = tk.targets.P99SRT.Microseconds()
	r.MaxShedRate = tk.targets.MaxShedRate
	srt := r.SRT()
	if r.P99TargetUS > 0 && srt.Count > 0 {
		r.BurnP99 = float64(srt.P99US) / float64(r.P99TargetUS)
	}
	if r.MaxShedRate > 0 {
		r.BurnShed = r.ShedRate / r.MaxShedRate
	}
	r.Violating = (r.P99TargetUS > 0 && srt.Count > 0 && srt.P99US > r.P99TargetUS) ||
		(r.MaxShedRate > 0 && r.ShedRate > r.MaxShedRate)
	return r
}
