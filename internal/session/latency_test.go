package session

import (
	"testing"
	"time"

	"prague/internal/workload"
)

func TestQFTAccountsLatencyBudget(t *testing.T) {
	db, idx := fixture(t)
	qs, err := workload.ContainmentQueries(db, 1, []int{5}, 31)
	if err != nil {
		t.Fatal(err)
	}
	wq := qs[0]

	// Generous budget: QFT = steps × budget exactly, no violations.
	rep, err := RunPrague(db, idx, wq, 2, Config{EdgeLatency: time.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BudgetViolations != 0 {
		t.Fatalf("violations at 1s budget: %d", rep.BudgetViolations)
	}
	if want := time.Duration(wq.Size()) * time.Second; rep.QFT != want {
		t.Fatalf("QFT %v, want %v", rep.QFT, want)
	}

	// Absurdly tight budget: every step violates, QFT = Σ step compute.
	rep, err = RunPrague(db, idx, wq, 2, Config{EdgeLatency: time.Nanosecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BudgetViolations != wq.Size() {
		t.Fatalf("violations at 1ns budget: %d, want %d", rep.BudgetViolations, wq.Size())
	}
	var sum time.Duration
	for _, st := range rep.Steps {
		sum += st.SpigTime + st.EvalTime
	}
	if rep.QFT != sum {
		t.Fatalf("QFT %v, want per-step sum %v", rep.QFT, sum)
	}
}

func TestDefaultLatencyIsTwoSeconds(t *testing.T) {
	if (Config{}).latency() != 2*time.Second {
		t.Error("default GUI latency must be the paper's 2s")
	}
	if (Config{EdgeLatency: time.Millisecond}).latency() != time.Millisecond {
		t.Error("explicit latency ignored")
	}
}
