package session

import (
	"testing"
	"time"

	"prague/internal/dataset"
	"prague/internal/graph"
	"prague/internal/index"
	"prague/internal/mining"
	"prague/internal/workload"
)

func fixture(t *testing.T) ([]*graph.Graph, *index.Set) {
	t.Helper()
	db, err := dataset.Molecules(dataset.MoleculeOptions{NumGraphs: 250, Seed: 21, MeanNodes: 12, MaxNodes: 40})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mining.Mine(db, mining.Options{MinSupportRatio: 0.1, MaxSize: 6, IncludeZeroSupportPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(res, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	return db, idx
}

func TestRunPragueContainment(t *testing.T) {
	db, idx := fixture(t)
	qs, err := workload.ContainmentQueries(db, 2, []int{4, 5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, wq := range qs {
		rep, err := RunPrague(db, idx, wq, 2, Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Steps) != wq.Size() {
			t.Fatalf("%s: %d step reports, want %d", wq.Name, len(rep.Steps), wq.Size())
		}
		if len(rep.Results) == 0 {
			t.Errorf("%s: containment query returned no results", wq.Name)
		}
		for _, r := range rep.Results {
			if rep.SimilarityMode == false && r.Distance != 0 {
				t.Errorf("%s: non-zero distance in containment mode", wq.Name)
			}
		}
		if rep.SRT <= 0 || rep.QFT <= 0 {
			t.Errorf("%s: missing timing (SRT=%v QFT=%v)", wq.Name, rep.SRT, rep.QFT)
		}
		// With the default 2s latency, laptop-scale steps never violate.
		if rep.BudgetViolations != 0 {
			t.Errorf("%s: %d budget violations at 2s latency", wq.Name, rep.BudgetViolations)
		}
	}
}

func TestRunPragueSimilarity(t *testing.T) {
	db, idx := fixture(t)
	best, worst, err := workload.FindSimilarityQueries(db, idx, 1, 1, workload.Options{
		Seed: 3, Sigma: 2, MinEdges: 4, MaxEdges: 6, Attempts: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, wq := range append(best, worst...) {
		rep, err := RunPrague(db, idx, wq, 2, Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.SimilarityMode {
			t.Errorf("%s: expected similarity mode", wq.Name)
		}
		// Results must match Definition 3 ground truth.
		qg := wq.Graph()
		want := map[int]int{}
		for _, g := range db {
			if d := graph.SubgraphDistance(qg, g); d <= 2 {
				want[g.ID] = d
			}
		}
		if len(rep.Results) != len(want) {
			t.Fatalf("%s: %d results, want %d", wq.Name, len(rep.Results), len(want))
		}
		for _, r := range rep.Results {
			if want[r.GraphID] != r.Distance {
				t.Fatalf("%s: graph %d distance %d, want %d", wq.Name, r.GraphID, r.Distance, want[r.GraphID])
			}
		}
	}
}

func TestRunPragueWithModification(t *testing.T) {
	db, idx := fixture(t)
	qs, err := workload.ContainmentQueries(db, 1, []int{6}, 9)
	if err != nil {
		t.Fatal(err)
	}
	wq := qs[0]
	rep, err := RunPrague(db, idx, wq, 2, Config{}, []Modification{
		{AfterEdges: 4, DeleteStep: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ModificationTimes) != 1 || len(rep.DeletedSteps) != 1 {
		t.Fatalf("modification not recorded: %+v", rep)
	}
	// The session result must equal a fresh run of the modified query.
	// (Covered in depth by core tests; here we sanity check the report.)
	if rep.ModificationTimes[0] < 0 {
		t.Error("negative modification time")
	}
}

func TestRunGBlender(t *testing.T) {
	db, idx := fixture(t)
	qs, err := workload.ContainmentQueries(db, 2, []int{4, 5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, wq := range qs {
		rep, err := RunGBlender(db, idx, wq, Config{EdgeLatency: time.Second}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.StepTimes) != wq.Size() {
			t.Fatalf("%s: %d step times", wq.Name, len(rep.StepTimes))
		}
		if len(rep.Results) == 0 {
			t.Errorf("%s: no results", wq.Name)
		}
	}
}

func TestGBlenderModificationReplay(t *testing.T) {
	db, idx := fixture(t)
	qs, err := workload.ContainmentQueries(db, 1, []int{6}, 13)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunGBlender(db, idx, qs[0], Config{}, []Modification{{AfterEdges: 5, DeleteStep: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ModificationTimes) != 1 {
		t.Fatal("modification not recorded")
	}
}

func TestPragueGBlenderAgreeOnContainment(t *testing.T) {
	// The paper's Figure 9(a): PRG and GBR answer containment queries
	// identically (and with comparable SRT).
	db, idx := fixture(t)
	qs, err := workload.ContainmentQueries(db, 3, []int{4, 5, 6}, 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, wq := range qs {
		prg, err := RunPrague(db, idx, wq, 2, Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		gbr, err := RunGBlender(db, idx, wq, Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if prg.SimilarityMode {
			continue
		}
		if len(prg.Results) != len(gbr.Results) {
			t.Fatalf("%s: PRG %d results, GBR %d", wq.Name, len(prg.Results), len(gbr.Results))
		}
		for i := range prg.Results {
			if prg.Results[i].GraphID != gbr.Results[i] {
				t.Fatalf("%s: result %d differs", wq.Name, i)
			}
		}
	}
}
