// Package session simulates the visual formulation sessions of the paper's
// user study: it drives a blended engine through a workload query one edge
// at a time, accounts each step's computation against the latency the GUI
// offers (the paper observes users need at least ~2 seconds to draw an
// edge), and measures the system response time (SRT) — the work left after
// the Run icon is pressed.
package session

import (
	"fmt"
	"time"

	"prague/internal/core"
	"prague/internal/gblender"
	"prague/internal/graph"
	"prague/internal/index"
	"prague/internal/metrics"
	"prague/internal/workload"
)

// Config is the latency model.
type Config struct {
	// EdgeLatency is the time the GUI gives the engine per drawn edge
	// (default 2s, the paper's lower bound on edge drawing time). It is
	// never slept; it is the budget per-step compute is compared against.
	EdgeLatency time.Duration
	// Metrics receives per-step and per-run observations (step counter,
	// SPIG/eval/modification histograms, SRT histogram); nil means
	// metrics.Default.
	Metrics *metrics.Registry
}

func (c Config) registry() *metrics.Registry {
	if c.Metrics != nil {
		return c.Metrics
	}
	return metrics.Default
}

func (c Config) latency() time.Duration {
	if c.EdgeLatency == 0 {
		return 2 * time.Second
	}
	return c.EdgeLatency
}

// Modification schedules an edge deletion during formulation.
type Modification struct {
	// AfterEdges applies the deletion once this many edges are drawn.
	AfterEdges int
	// DeleteStep is the step label to delete; if it cannot be deleted
	// (connectivity), the smallest deletable step is used instead, which is
	// how the experiments emulate the paper's "always delete e1" worst case.
	DeleteStep int
}

// StepReport is the measurement of one formulation step.
type StepReport struct {
	Step        int
	SpigTime    time.Duration
	EvalTime    time.Duration
	Status      core.Status
	NeedsChoice bool
}

// Report summarizes a PRAGUE session.
type Report struct {
	Name              string
	Steps             []StepReport
	ModificationTimes []time.Duration
	DeletedSteps      []int
	SimilarityMode    bool
	Free, Ver, Total  int
	Results           []core.Result
	// SRT is the system response time: compute after Run was pressed.
	SRT time.Duration
	// QFT is the simulated query formulation time: per step, the larger of
	// the GUI latency and the step's compute.
	QFT time.Duration
	// BudgetViolations counts steps whose compute exceeded the GUI latency
	// (the paper's claim is that this stays at zero).
	BudgetViolations int
}

// RunPrague drives a full PRAGUE session: formulate the workload query edge
// by edge (choosing similarity search whenever the engine reports an empty
// exact candidate set), apply any scheduled modifications, press Run, and
// report all measurements.
func RunPrague(db []*graph.Graph, idx *index.Set, wq workload.Query, sigma int, cfg Config, mods []Modification) (*Report, error) {
	e, err := core.New(db, idx, sigma)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: wq.Name}
	lat := cfg.latency()
	reg := cfg.registry()

	ids := make([]int, len(wq.NodeLabels))
	for i, l := range wq.NodeLabels {
		ids[i] = e.AddNode(l)
	}
	modAt := map[int][]Modification{}
	for _, m := range mods {
		modAt[m.AfterEdges] = append(modAt[m.AfterEdges], m)
	}

	for i, ed := range wq.Edges {
		out, err := e.AddEdge(ids[ed[0]], ids[ed[1]])
		if err != nil {
			return nil, fmt.Errorf("session: drawing edge %d of %s: %w", i+1, wq.Name, err)
		}
		reg.Counter(metrics.CounterStepsEvaluated).Inc()
		reg.Histogram(metrics.HistSpigBuild).Observe(out.SpigTime)
		reg.Histogram(metrics.HistStepEval).Observe(out.EvalTime)
		sr := StepReport{
			Step: out.Step, SpigTime: out.SpigTime, EvalTime: out.EvalTime,
			Status: out.Status, NeedsChoice: out.NeedsChoice,
		}
		if out.NeedsChoice {
			e.ChooseSimilarity()
		}
		rep.Steps = append(rep.Steps, sr)
		stepCompute := out.SpigTime + out.EvalTime
		if stepCompute > lat {
			rep.BudgetViolations++
			rep.QFT += stepCompute
		} else {
			rep.QFT += lat
		}

		for _, m := range modAt[i+1] {
			del := m.DeleteStep
			if !e.Query().CanDelete(del) {
				del = 0
				for _, s := range e.Query().Steps() {
					if e.Query().CanDelete(s) {
						del = s
						break
					}
				}
			}
			if del == 0 {
				return nil, fmt.Errorf("session: no deletable edge for modification after edge %d", i+1)
			}
			out, err := e.DeleteEdge(del)
			if err != nil {
				return nil, err
			}
			if out.NeedsChoice {
				e.ChooseSimilarity()
			}
			times := e.Stats().ModificationTime
			rep.ModificationTimes = append(rep.ModificationTimes, times[len(times)-1])
			rep.DeletedSteps = append(rep.DeletedSteps, del)
			reg.Histogram(metrics.HistModification).Observe(times[len(times)-1])
		}
	}

	rep.SimilarityMode = e.SimilarityMode()
	rep.Free, rep.Ver, rep.Total = e.CandidateCounts()

	results, err := e.Run()
	if err != nil {
		return nil, err
	}
	rep.Results = results
	rep.SRT = e.Stats().RunTime
	reg.Counter(metrics.CounterRuns).Inc()
	reg.Histogram(metrics.HistSRT).Observe(rep.SRT)
	return rep, nil
}

// GBReport summarizes a GBLENDER session (containment only).
type GBReport struct {
	Name              string
	StepTimes         []time.Duration
	ModificationTimes []time.Duration
	Results           []int
	SRT               time.Duration
	BudgetViolations  int
}

// RunGBlender drives a GBLENDER session over the same workload query (the
// Figure 9(a) comparison). Modifications use GBLENDER's full-replay path.
func RunGBlender(db []*graph.Graph, idx *index.Set, wq workload.Query, cfg Config, mods []Modification) (*GBReport, error) {
	e, err := gblender.New(db, idx)
	if err != nil {
		return nil, err
	}
	rep := &GBReport{Name: wq.Name}
	lat := cfg.latency()

	ids := make([]int, len(wq.NodeLabels))
	for i, l := range wq.NodeLabels {
		ids[i] = e.AddNode(l)
	}
	modAt := map[int][]Modification{}
	for _, m := range mods {
		modAt[m.AfterEdges] = append(modAt[m.AfterEdges], m)
	}
	for i, ed := range wq.Edges {
		if _, err := e.AddEdge(ids[ed[0]], ids[ed[1]]); err != nil {
			return nil, fmt.Errorf("session: drawing edge %d of %s: %w", i+1, wq.Name, err)
		}
		times := e.Stats().StepEvaluation
		st := times[len(times)-1]
		rep.StepTimes = append(rep.StepTimes, st)
		if st > lat {
			rep.BudgetViolations++
		}
		for _, m := range modAt[i+1] {
			del := m.DeleteStep
			if !e.Query().CanDelete(del) {
				del = 0
				for _, s := range e.Query().Steps() {
					if e.Query().CanDelete(s) {
						del = s
						break
					}
				}
			}
			if del == 0 {
				return nil, fmt.Errorf("session: no deletable edge for modification after edge %d", i+1)
			}
			if err := e.DeleteEdge(del); err != nil {
				return nil, err
			}
			mt := e.Stats().ModificationTime
			rep.ModificationTimes = append(rep.ModificationTimes, mt[len(mt)-1])
		}
	}
	results, err := e.Run()
	if err != nil {
		return nil, err
	}
	rep.Results = results
	rep.SRT = e.Stats().RunTime
	return rep, nil
}
