package faultinject

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilAndUnarmedAreNoOps(t *testing.T) {
	var in *Injector
	if err := in.Hit(context.Background(), SiteVerify); err != nil {
		t.Fatalf("nil injector: %v", err)
	}
	in.Set(SiteVerify, Rule{Every: 1, Err: true})
	in.Disarm()
	in.Rearm()
	if in.Hits(SiteVerify) != 0 || in.Fired(SiteVerify) != 0 {
		t.Fatal("nil injector counted")
	}
	if err := Hit(context.Background(), SiteCache); err != nil {
		t.Fatalf("uninstrumented context: %v", err)
	}
	armed := New()
	if err := armed.Hit(context.Background(), SiteIndex); err != nil {
		t.Fatalf("unarmed site: %v", err)
	}
	if got := armed.Hits(SiteIndex); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
}

func TestEveryNthDeterminism(t *testing.T) {
	in := New()
	in.Set(SiteVerify, Rule{Every: 3, Err: true})
	ctx := With(context.Background(), in)
	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, Hit(ctx, SiteVerify) != nil)
	}
	// 1-based hits fire when hit % 3 == 0: hits 3, 6, 9.
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("hit %d fired=%v, want %v (pattern %v)", i+1, pattern[i], want[i], pattern)
		}
	}
	if in.Fired(SiteVerify) != 3 {
		t.Fatalf("fired = %d, want 3", in.Fired(SiteVerify))
	}
	// Offset shifts the firing phase.
	in2 := New()
	in2.Set(SiteVerify, Rule{Every: 3, Offset: 1, Err: true})
	fired := 0
	var firstFired int
	for i := 1; i <= 6; i++ {
		if in2.Hit(context.Background(), SiteVerify) != nil {
			fired++
			if firstFired == 0 {
				firstFired = i
			}
		}
	}
	if fired != 2 || firstFired != 1 {
		t.Fatalf("offset rule: fired=%d first=%d, want 2 and 1", fired, firstFired)
	}
}

func TestErrorWrapsSentinel(t *testing.T) {
	in := New()
	in.Set(SiteCache, Rule{Every: 1, Err: true})
	err := in.Hit(context.Background(), SiteCache)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestPanicCarriesPanicValue(t *testing.T) {
	in := New()
	in.Set(SiteVerify, Rule{Every: 1, Panic: true})
	defer func() {
		v := recover()
		pv, ok := v.(PanicValue)
		if !ok || pv.Site != SiteVerify {
			t.Fatalf("recovered %v, want PanicValue{SiteVerify}", v)
		}
	}()
	in.Hit(context.Background(), SiteVerify) //nolint:errcheck // panics
	t.Fatal("unreachable")
}

func TestLatencyHonorsContext(t *testing.T) {
	in := New()
	in.Set(SiteIndex, Rule{Every: 1, Latency: time.Minute})
	ctx, cancel := context.WithCancel(With(context.Background(), in))
	cancel()
	t0 := time.Now()
	err := Hit(ctx, SiteIndex)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("cancelled latency injection took %v", d)
	}
	// A short latency-only rule delays but succeeds.
	in2 := New()
	in2.Set(SiteIndex, Rule{Every: 1, Latency: time.Millisecond})
	if err := in2.Hit(context.Background(), SiteIndex); err != nil {
		t.Fatalf("latency-only rule errored: %v", err)
	}
}

func TestDisarmStopsFiringButCountsHits(t *testing.T) {
	in := New()
	in.Set(SiteVerify, Rule{Every: 1, Err: true})
	in.Disarm()
	for i := 0; i < 5; i++ {
		if err := in.Hit(context.Background(), SiteVerify); err != nil {
			t.Fatalf("disarmed injector fired: %v", err)
		}
	}
	if in.Hits(SiteVerify) != 5 || in.Fired(SiteVerify) != 0 {
		t.Fatalf("hits=%d fired=%d, want 5 and 0", in.Hits(SiteVerify), in.Fired(SiteVerify))
	}
	in.Rearm()
	if err := in.Hit(context.Background(), SiteVerify); err == nil {
		t.Fatal("rearmed injector did not fire")
	}
}

func TestConcurrentHitsRace(t *testing.T) {
	in := New()
	in.Set(SiteVerify, Rule{Every: 2, Err: true})
	ctx := With(context.Background(), in)
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				Hit(ctx, SiteVerify) //nolint:errcheck // counting only
			}
		}()
	}
	wg.Wait()
	if got := in.Hits(SiteVerify); got != workers*per {
		t.Fatalf("hits = %d, want %d", got, workers*per)
	}
	if got := in.Fired(SiteVerify); got != workers*per/2 {
		t.Fatalf("fired = %d, want %d", got, workers*per/2)
	}
}
