// Package faultinject is PRAGUE's deterministic fault-injection hook
// layer: a context-carried Injector that sites on the evaluation hot path
// (per-candidate verification, candidate-cache computation, index probes)
// consult before doing real work. A firing rule can delay the site, make it
// return a typed error, or panic inside it — exactly the failure classes a
// production deployment sees from slow disks, poisoned cache shards, and
// bugs in verification code.
//
// Determinism is the point: rules fire on a per-site hit counter (every Nth
// hit, with an offset), so a chaos schedule replays identically for a given
// workload interleaving and seeds stay meaningful across runs. The package
// follows the trace package's nil-safety convention: a nil *Injector and a
// context without one are both valid and cost one context Value miss per
// site — production binaries that never arm an injector pay nothing else.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Site identifies one instrumented hook point on the evaluation path.
type Site uint8

const (
	// SiteVerify fires inside per-candidate verification (VF2/SimVerify),
	// under the workpool's panic isolation.
	SiteVerify Site = iota
	// SiteCache fires at candidate-cache lookups; a firing error makes the
	// cache behave as unavailable (the caller computes without it).
	SiteCache
	// SiteIndex fires at non-indexed-fragment index probes (the Algorithm 3
	// intersections, whose output is always verified downstream); a firing
	// error degrades the probe to the sound no-information candidate set
	// (the whole database).
	SiteIndex
	// SiteRPCConn fires on the coordinator side, once per remote call
	// attempt before anything hits the wire. A firing error simulates a
	// dropped connection (the attempt never reaches the server); latency
	// models a slow network path. Armed via the context injector, like the
	// local sites.
	SiteRPCConn
	// SiteRPCServe fires on a shard server, once per received request
	// before it is processed. An error rule makes the server drop the
	// connection (the client sees a transport error — with Every:1 this is
	// a full partition of that server); a latency rule models a slow shard.
	// Armed on the server's own injector, not the request context.
	SiteRPCServe
	// SiteRPCEpoch fires on a shard server just before a reply is written.
	// A firing error makes the server answer with a stale epoch tag, so the
	// client's epoch-consistency check must reject the reply and retry (or
	// fail over). Latency/panic fields are ignored at this site.
	SiteRPCEpoch

	numSites
)

var siteNames = [numSites]string{
	SiteVerify:   "verify",
	SiteCache:    "cache",
	SiteIndex:    "index",
	SiteRPCConn:  "rpc_conn",
	SiteRPCServe: "rpc_serve",
	SiteRPCEpoch: "rpc_epoch",
}

func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return "unknown"
}

// Sites lists every instrumented site.
func Sites() []Site {
	return []Site{SiteVerify, SiteCache, SiteIndex, SiteRPCConn, SiteRPCServe, SiteRPCEpoch}
}

// ErrInjected is the sentinel wrapped by every injected error; consumers
// test with errors.Is. Injected panics carry a PanicValue.
var ErrInjected = errors.New("injected fault")

// PanicValue is what injected panics carry, so recovery sites (the
// workpool) can distinguish injected chaos from genuine bugs in logs while
// treating both identically.
type PanicValue struct{ Site Site }

func (p PanicValue) String() string { return "faultinject: injected panic at " + p.Site.String() }

// Rule configures when and how one site misbehaves. A rule fires on hit
// numbers n (1-based, per site) with n % Every == Offset % Every; Every ≤ 0
// disables the rule. When it fires, the site first sleeps Latency (honoring
// context cancellation), then panics if Panic is set, then returns an
// injected error if Err is set; a latency-only rule just delays. Panic rules
// are meant for SiteVerify, which runs under the workpool's per-candidate
// recovery; a panic injected at an unisolated site propagates to the caller
// like any other bug.
type Rule struct {
	Every   int
	Offset  int
	Latency time.Duration
	Err     bool
	Panic   bool
}

func (r Rule) fires(hit int64) bool {
	if r.Every <= 0 {
		return false
	}
	return hit%int64(r.Every) == int64(r.Offset%r.Every)
}

// Injector holds the armed rules and per-site counters. All methods are
// safe for concurrent use and nil-safe; the zero value has no rules armed.
type Injector struct {
	disarmed atomic.Bool
	rules    [numSites]atomic.Pointer[Rule]
	hits     [numSites]atomic.Int64
	fired    [numSites]atomic.Int64
	notify   [numSites]atomic.Pointer[chan struct{}]
}

// New returns an empty injector (no rules armed).
func New() *Injector { return &Injector{} }

// Set arms (or, with a zero Rule, clears) the rule for one site.
func (in *Injector) Set(site Site, r Rule) {
	if in == nil || int(site) >= int(numSites) {
		return
	}
	in.rules[site].Store(&r)
}

// Disarm stops all rules from firing without clearing them or the counters —
// chaos tests flip this to prove the system recovers once faults stop.
func (in *Injector) Disarm() {
	if in != nil {
		in.disarmed.Store(true)
	}
}

// Rearm re-enables the armed rules after Disarm.
func (in *Injector) Rearm() {
	if in != nil {
		in.disarmed.Store(false)
	}
}

// Hits returns how many times the site was reached (whether or not a rule
// fired). Nil-safe.
func (in *Injector) Hits(site Site) int64 {
	if in == nil || int(site) >= int(numSites) {
		return 0
	}
	return in.hits[site].Load()
}

// Fired returns how many faults the site's rule injected. Nil-safe.
func (in *Injector) Fired(site Site) int64 {
	if in == nil || int(site) >= int(numSites) {
		return 0
	}
	return in.fired[site].Load()
}

// NotifyFired returns a channel that receives (capacity 1, coalescing) each
// time the site's rule injects a fault. Tests block on it instead of polling
// Fired in a sleep loop — the notification arrives the instant the fault
// fires, before any injected latency elapses. The same channel is returned
// on every call for a given site. Nil-safe (returns nil, which blocks
// forever in a select — pair it with a deadline).
func (in *Injector) NotifyFired(site Site) <-chan struct{} {
	if in == nil || int(site) >= int(numSites) {
		return nil
	}
	for {
		if ch := in.notify[site].Load(); ch != nil {
			return *ch
		}
		ch := make(chan struct{}, 1)
		if in.notify[site].CompareAndSwap(nil, &ch) {
			return ch
		}
	}
}

// Hit reports that execution reached the site and applies the armed rule:
// it may sleep, panic, or return an error wrapping ErrInjected. A nil
// injector, an unarmed site, and a non-firing hit all return nil. Hits are
// counted even while disarmed, so counters stay comparable across phases.
func (in *Injector) Hit(ctx context.Context, site Site) error {
	if in == nil || int(site) >= int(numSites) {
		return nil
	}
	hit := in.hits[site].Add(1)
	rp := in.rules[site].Load()
	if rp == nil || in.disarmed.Load() || !rp.fires(hit) {
		return nil
	}
	in.fired[site].Add(1)
	if ch := in.notify[site].Load(); ch != nil {
		select {
		case *ch <- struct{}{}:
		default:
		}
	}
	if rp.Latency > 0 {
		t := time.NewTimer(rp.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("faultinject: %s latency interrupted: %w", site, ctx.Err())
		}
	}
	if rp.Panic {
		panic(PanicValue{Site: site})
	}
	if rp.Err {
		return fmt.Errorf("faultinject: %s: %w", site, ErrInjected)
	}
	return nil
}

type ctxKey struct{}

// With returns a context carrying the injector; a nil injector returns ctx
// unchanged.
func With(ctx context.Context, in *Injector) context.Context {
	if in == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, in)
}

// FromContext returns the injector carried by ctx, or nil.
func FromContext(ctx context.Context) *Injector {
	in, _ := ctx.Value(ctxKey{}).(*Injector)
	return in
}

// Hit is the convenience form sites use: apply the rule of the injector
// carried by ctx, if any. On an uninstrumented context this is a single
// Value miss.
func Hit(ctx context.Context, site Site) error {
	return FromContext(ctx).Hit(ctx, site)
}
